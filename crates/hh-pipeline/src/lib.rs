//! Parallel ingestion pipelines: key-sharded (union-of-reports),
//! merge-based (arbitrary partitioning), and windowed (time decay).
//!
//! The workspace's summaries are single-threaded by construction (the
//! paper's model is one pass, one machine word at a time). This crate
//! offers two complementary ways to scale them out, plus a windowing
//! layer:
//!
//! * [`ShardedPipeline`] shards the stream **by key** and unions
//!   per-shard reports — no merge semantics needed, works for any
//!   summary, but requires a router in front of every summary (one
//!   process, or one routing tier).
//! * [`partition_and_merge`] / [`PartitionedPipeline`] split the stream
//!   **by position** — any chunking whatsoever — and combine the
//!   per-part summaries through [`MergeableSummary`]. This is the shape
//!   distributed aggregation actually has (each ingest node summarizes
//!   whatever traffic reached it, a combiner merges), at the price that
//!   randomized summaries must be **seed-aligned**: build them with the
//!   [`seed_aligned_algo1`] / [`seed_aligned_algo2`] presets, which
//!   share one *structure seed* (hash draws) across parts while giving
//!   every part its own *stream seed* (sampling coins). See DESIGN.md
//!   §"Mergeable summaries".
//! * [`WindowedHh`] rotates per-window summaries and merges the live
//!   ones at query time — tumbling or sliding heavy hitters from the
//!   same merge contract.
//!
//! # Key-sharded mode
//!
//! A shared universal hash routes every occurrence of an item
//! to the same shard, so each shard's summary sees a complete substream
//! — every key's entire count lands on exactly one summary. That choice
//! buys two things a position-sharded split (summarize chunks, merge)
//! cannot:
//!
//! * **No merge semantics.** The global report is the union of per-shard
//!   reports re-thresholded against the *global* stream length. Nothing
//!   is ever combined across summaries, so summaries without a sound
//!   merge (Algorithm 2's sampled, hashed, epoch-coupled tables) shard
//!   as-is.
//! * **Per-shard analyses survive verbatim.** Each shard runs the
//!   unmodified algorithm on the substream of its keys; sampling,
//!   collision, and Misra–Gries error arguments apply per shard with the
//!   shard's (smaller) sample and stream counts, which only tightens
//!   them. See DESIGN.md §"Key-sharded parallel pipeline" for the full
//!   (φ, ε) argument.
//!
//! Ingestion is batch-oriented: [`ShardedPipeline::ingest`] partitions a
//! batch into per-shard scratch buffers with a fast-range over the shared
//! hash, then hands each buffer to that shard's **persistent worker**
//! ([`runtime::ShardRuntime`]): threads are spawned once at
//! construction, batches travel through bounded queues, reads
//! synchronize via a flush barrier, and worker panics propagate on
//! join. Single-core hosts fall back to inline sequential ingestion —
//! same state, no threads.
//!
//! # Example
//!
//! ```
//! use hh_core::{HeavyHitters, HhParams};
//! use hh_pipeline::sharded_algo2;
//!
//! let params = HhParams::new(0.05, 0.2).unwrap();
//! let m = 200_000u64;
//! let mut pipe = sharded_algo2(params, 1 << 30, m, 4, 42).unwrap();
//! let batch: Vec<u64> = (0..m).map(|i| if i % 2 == 0 { 7 } else { i }).collect();
//! pipe.ingest(&batch);
//! assert!(pipe.report().contains(7)); // 50% item at phi = 20%
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runtime;

pub use runtime::{
    Backpressure, FailurePolicy, FlushError, IngestMode, RecoverError, RuntimeHealth, ShardRuntime,
};

use hh_core::{FrequencyEstimator, HeavyHitters, HhParams, ItemEstimate, OptimalListHh};
use hh_core::{MergeError, MergeableSummary, ParamError, QueryCache, Report};
use hh_core::{SimpleListHh, StreamSummary};
use std::collections::VecDeque;

/// SplitMix64 finalizer: turns any seed (including 0) into a well-mixed
/// word for the router multiplier and per-shard summary seeds.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A key-sharded bank of summaries behind a batch ingestion front end.
///
/// `S` is any [`StreamSummary`]; reporting additionally needs
/// [`HeavyHitters`]. Construction takes a factory so each shard gets its
/// own (independently seeded) summary.
#[derive(Debug)]
pub struct ShardedPipeline<S> {
    /// The persistent worker bank (or its inline sequential fallback);
    /// see [`runtime::ShardRuntime`].
    runtime: ShardRuntime<S>,
    /// Per-shard partition buffers. In parallel mode each `dispatch`
    /// swaps the filled buffer for a recycled one from the runtime's
    /// free list, so the same few allocations circulate forever.
    scratch: Vec<Vec<u64>>,
    /// Odd multiplier of the shared routing hash (Dietzfelbinger's
    /// plain-universal multiply: `h(x) = a·x mod 2⁶⁴`, then a fast-range
    /// of the full word onto the shard count).
    multiplier: u64,
    /// Union-report threshold as a fraction of the total ingested stream
    /// (callers pass the `φ − ε/2` of their summary's reporting rule).
    threshold: f64,
    total: u64,
}

impl<S: StreamSummary + Send + 'static> ShardedPipeline<S> {
    /// A pipeline of `num_shards ≥ 1` summaries built by `make(shard)`,
    /// routing keys with a universal hash drawn from `seed`. The final
    /// report keeps union entries with at least `threshold · total`
    /// estimated occurrences.
    pub fn new(
        num_shards: usize,
        seed: u64,
        threshold: f64,
        mut make: impl FnMut(usize) -> S,
    ) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        Self::from_summaries((0..num_shards).map(&mut make).collect(), seed, threshold)
    }

    /// A pipeline over prebuilt shard summaries (one per shard, in shard
    /// order); see [`ShardedPipeline::new`] for the routing and
    /// threshold conventions. Workers (or the sequential fallback) are
    /// chosen by [`IngestMode::Auto`]; use
    /// [`ShardedPipeline::with_mode`] to force a mode.
    pub fn from_summaries(shards: Vec<S>, seed: u64, threshold: f64) -> Self {
        Self::with_mode(shards, seed, threshold, IngestMode::Auto)
    }

    /// [`ShardedPipeline::from_summaries`] with an explicit ingest mode
    /// (the equivalence suite pins [`IngestMode::Parallel`] against
    /// [`IngestMode::Sequential`] on one host; everything else should
    /// use [`IngestMode::Auto`]).
    pub fn with_mode(shards: Vec<S>, seed: u64, threshold: f64, mode: IngestMode) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(threshold >= 0.0, "threshold is a fraction of the stream");
        let scratch = vec![Vec::new(); shards.len()];
        Self {
            runtime: ShardRuntime::new(shards, mode),
            scratch,
            multiplier: mix64(seed) | 1,
            threshold,
            total: 0,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.runtime.len()
    }

    /// Items ingested so far (across all shards).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether ingestion runs on persistent shard workers (false on the
    /// single-core / single-shard sequential fallback).
    pub fn is_parallel(&self) -> bool {
        self.runtime.is_parallel()
    }

    /// A point-in-time health snapshot of the underlying shard runtime:
    /// quarantined shards, shed items, available checkpoints. See
    /// [`RuntimeHealth`] and [`FailurePolicy`].
    pub fn health(&self) -> RuntimeHealth {
        self.runtime.health()
    }

    /// Sets the runtime's worker-failure policy; see [`FailurePolicy`].
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.runtime.set_failure_policy(policy);
    }

    /// Direct access to the shard runtime, for failure-handling
    /// operations ([`ShardRuntime::checkpoint`],
    /// [`ShardRuntime::recover`], [`ShardRuntime::flush_timeout`])
    /// beyond the pipeline's own surface.
    pub fn runtime_mut(&mut self) -> &mut ShardRuntime<S> {
        &mut self.runtime
    }

    /// The shard that owns `item` — every occurrence routes here.
    #[inline]
    pub fn shard_of(&self, item: u64) -> usize {
        let h = self.multiplier.wrapping_mul(item);
        // Lemire fast-range of the full hashed word onto the shard count:
        // the same near-equal preimage classes as `h % shards` without
        // the division, and universality is inherited from the multiply.
        ((h as u128 * self.runtime.len() as u128) >> 64) as usize
    }

    /// Read access to shard `j`'s summary (shard `j` holds exactly the
    /// keys with `shard_of(key) == j`). Waits for all dispatched batches
    /// first, so the view is current.
    pub fn with_summary<T>(&self, j: usize, f: impl FnOnce(&S) -> T) -> T {
        self.runtime.flush();
        self.runtime.with_summary(j, f)
    }

    /// Maps a read over every shard's summary, in shard order, after a
    /// flush barrier.
    pub fn map_summaries<T>(&self, f: impl FnMut(&S) -> T) -> Vec<T> {
        self.runtime.flush();
        self.runtime.map_summaries(f)
    }

    /// Ingests one batch: a partition pass scatters the batch into
    /// per-shard buffers, then each non-empty buffer is dispatched to
    /// its shard's persistent worker (ingested inline on the sequential
    /// fallback). Calls may be any size; summaries see their keys in
    /// stream order across calls — per-shard queues are FIFO and a key
    /// always routes to the same shard.
    ///
    /// Dispatch is asynchronous in parallel mode: the call returns once
    /// the batch is *enqueued* (blocking only on a full shard queue for
    /// back-pressure), and reads synchronize via the flush barrier every
    /// read-side method takes.
    pub fn ingest(&mut self, batch: &[u64]) {
        self.total += batch.len() as u64;
        if self.runtime.len() == 1 {
            // Single shard: the partition pass would be a copy.
            self.runtime.dispatch_ref(0, batch);
            return;
        }
        let k = self.runtime.len();
        for buf in &mut self.scratch {
            buf.clear();
            buf.reserve(batch.len() / k + batch.len() / (4 * k) + 16);
        }
        let mul = self.multiplier;
        for &x in batch {
            let s = ((mul.wrapping_mul(x) as u128 * k as u128) >> 64) as usize;
            self.scratch[s].push(x);
        }
        for (j, buf) in self.scratch.iter_mut().enumerate() {
            self.runtime.dispatch(j, buf);
        }
    }
}

impl<S: StreamSummary + HeavyHitters + Send + 'static> ShardedPipeline<S> {
    /// The global report: the union of per-shard reports, re-thresholded
    /// against the global stream length. Shard reports threshold against
    /// their *own* (shorter) substreams, so they may include keys that
    /// are shard-heavy but globally light; the global cut removes them.
    /// Keys are disjoint across shards, so the union needs no combining.
    ///
    /// Waits for all dispatched batches (flush barrier) before reading.
    pub fn report(&self) -> Report {
        self.runtime.flush();
        let bar = self.threshold * self.total as f64;
        self.runtime
            .map_summaries(HeavyHitters::report)
            .iter()
            .flat_map(|r| r.entries().to_vec())
            .filter(|e| e.count >= bar)
            .collect::<Vec<ItemEstimate>>()
            .into_iter()
            .collect()
    }

    /// The raw per-shard reports (before the global threshold), for
    /// diagnostics and tests. Flushes first.
    pub fn shard_reports(&self) -> Vec<Report> {
        self.runtime.flush();
        self.runtime.map_summaries(HeavyHitters::report)
    }
}

/// A key-sharded bank of Algorithm 1 instances ([`SimpleListHh`]).
///
/// Every shard advertises the **full** stream length `m`, so each keeps
/// the unsharded sampling rate `p = Θ(ℓ/m)`: the sampled work of the
/// whole pipeline equals one unsharded run, split across shards. The
/// union report thresholds at the algorithm's own `(φ − ε/2)` rule
/// against the global stream.
pub fn sharded_algo1(
    params: HhParams,
    universe: u64,
    m: u64,
    shards: usize,
    seed: u64,
) -> Result<ShardedPipeline<SimpleListHh>, ParamError> {
    let summaries = (0..shards)
        .map(|j| SimpleListHh::new(params, universe, m, mix64(seed).wrapping_add(j as u64)))
        .collect::<Result<Vec<_>, _>>()?;
    let threshold = params.phi() - params.eps() / 2.0;
    Ok(ShardedPipeline::from_summaries(
        summaries,
        mix64(seed ^ 0xA1),
        threshold,
    ))
}

/// A key-sharded bank of Algorithm 2 instances ([`OptimalListHh`]); see
/// [`sharded_algo1`] for the advertised-length and threshold conventions.
pub fn sharded_algo2(
    params: HhParams,
    universe: u64,
    m: u64,
    shards: usize,
    seed: u64,
) -> Result<ShardedPipeline<OptimalListHh>, ParamError> {
    let summaries = (0..shards)
        .map(|j| OptimalListHh::new(params, universe, m, mix64(seed).wrapping_add(j as u64)))
        .collect::<Result<Vec<_>, _>>()?;
    let threshold = params.phi() - params.eps() / 2.0;
    Ok(ShardedPipeline::from_summaries(
        summaries,
        mix64(seed ^ 0xA2),
        threshold,
    ))
}

/// SplitMix64-derived stream seed for part `j` of a seed-aligned bank.
fn stream_seed(seed: u64, j: usize) -> u64 {
    mix64(mix64(seed ^ 0x57AE).wrapping_add(j as u64))
}

/// A bank of **seed-aligned** Algorithm 1 instances for merge-based
/// pipelines: every part draws its hash from the same structure seed
/// (so the summaries are merge-compatible) and its sampling coins from
/// a per-part stream seed (so parts sample independently). Parts
/// advertise the full stream length `m`, keeping the unsharded rate.
pub fn seed_aligned_algo1(
    params: HhParams,
    universe: u64,
    m: u64,
    parts: usize,
    seed: u64,
) -> Result<Vec<SimpleListHh>, ParamError> {
    (0..parts)
        .map(|j| SimpleListHh::with_seeds(params, universe, m, mix64(seed), stream_seed(seed, j)))
        .collect()
}

/// A bank of seed-aligned Algorithm 2 instances; see
/// [`seed_aligned_algo1`] for the seeding conventions. All parts share
/// their `R` repetition hashes, which is exactly the precondition for
/// the bucket-wise [`MergeableSummary::merge_from`] of `OptimalListHh`.
pub fn seed_aligned_algo2(
    params: HhParams,
    universe: u64,
    m: u64,
    parts: usize,
    seed: u64,
) -> Result<Vec<OptimalListHh>, ParamError> {
    (0..parts)
        .map(|j| OptimalListHh::with_seeds(params, universe, m, mix64(seed), stream_seed(seed, j)))
        .collect()
}

/// Splits `stream` into one positional chunk per summary, ingests the
/// chunks concurrently on a [`ShardRuntime`] worker bank (inline on the
/// single-core fallback — no thread is ever spawned that the host
/// cannot use), and merges the results left to right. This is the
/// merge-based counterpart of [`ShardedPipeline`]: the partition is
/// arbitrary (chunks here; any split works), so it models distributed
/// ingestion where each node summarizes whatever reached it.
///
/// # Errors
/// [`MergeError`] if the summaries are not merge-compatible (randomized
/// summaries must be seed-aligned; use the `seed_aligned_*` presets).
///
/// # Panics
/// If `summaries` is empty.
///
/// # Example
///
/// ```
/// use hh_core::{HeavyHitters, HhParams};
/// use hh_pipeline::{partition_and_merge, seed_aligned_algo2};
///
/// let m = 200_000u64;
/// let stream: Vec<u64> = (0..m).map(|i| if i % 2 == 0 { 7 } else { i }).collect();
/// let params = HhParams::new(0.05, 0.2).unwrap();
/// let parts = seed_aligned_algo2(params, 1 << 30, m, 4, 42).unwrap();
/// let merged = partition_and_merge(parts, &stream).unwrap();
/// assert!(merged.report().contains(7)); // 50% item at phi = 20%
/// ```
pub fn partition_and_merge<S>(summaries: Vec<S>, stream: &[u64]) -> Result<S, MergeError>
where
    S: StreamSummary + MergeableSummary + Send + 'static,
{
    assert!(!summaries.is_empty(), "need at least one part");
    let chunk = stream.len().div_ceil(summaries.len()).max(1);
    let mut rt = ShardRuntime::new(summaries, IngestMode::Auto);
    for (j, part) in stream.chunks(chunk).enumerate() {
        rt.dispatch_ref(j, part);
    }
    // `into_summaries` joins the workers, which drains every queue — an
    // implicit flush — and propagates any worker panic.
    let mut parts = rt.into_summaries();
    let mut acc = parts.remove(0);
    for s in &parts {
        acc.merge_from(s)?;
    }
    Ok(acc)
}

/// An immutable, query-optimized view of a summary for serving.
///
/// Freezing materializes the report once; afterwards [`Frozen::report`]
/// hands out a **borrow** of it — no clone, no lock, no rescan — and
/// point queries go to the (warm, never-again-invalidated) summary.
/// `Frozen` is the read-mostly serving shape: build one per window
/// rotation or checkpoint, share it behind an `Arc` across however many
/// query threads the service runs, and drop it when the next one is
/// ready. Obtained from [`WindowedHh::frozen`] /
/// [`PartitionedPipeline::frozen`], or [`Frozen::new`] for any summary.
#[derive(Debug, Clone)]
pub struct Frozen<S> {
    summary: S,
    report: Report,
}

impl<S: HeavyHitters> Frozen<S> {
    /// Freezes a summary: runs (and stores) its report eagerly, so every
    /// subsequent read is allocation-free.
    pub fn new(summary: S) -> Self {
        let report = summary.report();
        Self { summary, report }
    }

    /// The materialized report, by reference.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// The frozen summary (read-only).
    pub fn summary(&self) -> &S {
        &self.summary
    }

    /// Unfreezes, returning the summary (e.g. to resume ingestion).
    pub fn into_inner(self) -> S {
        self.summary
    }
}

impl<S: FrequencyEstimator> Frozen<S> {
    /// Point query against the frozen summary.
    pub fn estimate(&self, item: u64) -> f64 {
        self.summary.estimate(item)
    }
}

/// An incremental merge-based pipeline: a fixed bank of seed-aligned
/// summaries that ingests batches round-robin (each call lands on the
/// next part, simulating independent ingest nodes) and merges on
/// demand. Unlike [`partition_and_merge`] the stream does not need to
/// be materialized up front.
///
/// Queries run on the **cached path**: the merged summary is
/// materialized once after a quiescent period and shared by every
/// `merged`/`report` call until the next `ingest` invalidates it, so a
/// query burst between batches pays one merge, not one per query.
#[derive(Debug)]
pub struct PartitionedPipeline<S> {
    /// The part bank behind persistent workers (or the inline fallback);
    /// round-robin ingestion means each part has its own worker and
    /// consecutive batches pipeline across them.
    runtime: ShardRuntime<S>,
    next: usize,
    total: u64,
    /// Materialized merge of the bank; dropped by every `ingest`.
    merged_cache: QueryCache<S>,
}

impl<S: StreamSummary + MergeableSummary + Clone + Send + 'static> PartitionedPipeline<S> {
    /// A pipeline over a prebuilt bank of merge-compatible summaries,
    /// with workers (or the sequential fallback) chosen by
    /// [`IngestMode::Auto`].
    ///
    /// # Panics
    /// If `parts` is empty.
    pub fn new(parts: Vec<S>) -> Self {
        Self::with_mode(parts, IngestMode::Auto)
    }

    /// [`PartitionedPipeline::new`] with an explicit ingest mode (for
    /// the mode-equivalence suite; everything else should use
    /// [`IngestMode::Auto`]).
    pub fn with_mode(parts: Vec<S>, mode: IngestMode) -> Self {
        assert!(!parts.is_empty(), "need at least one part");
        Self {
            runtime: ShardRuntime::new(parts, mode),
            next: 0,
            total: 0,
            merged_cache: QueryCache::new(),
        }
    }

    /// Number of parts in the bank.
    pub fn num_parts(&self) -> usize {
        self.runtime.len()
    }

    /// Items ingested so far across all parts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// A point-in-time health snapshot of the underlying shard runtime;
    /// see [`RuntimeHealth`] and [`FailurePolicy`].
    pub fn health(&self) -> RuntimeHealth {
        self.runtime.health()
    }

    /// Sets the runtime's worker-failure policy; see [`FailurePolicy`].
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.runtime.set_failure_policy(policy);
    }

    /// Direct access to the part runtime, for failure-handling
    /// operations ([`ShardRuntime::checkpoint`],
    /// [`ShardRuntime::recover`], [`ShardRuntime::flush_timeout`])
    /// beyond the pipeline's own surface.
    pub fn runtime_mut(&mut self) -> &mut ShardRuntime<S> {
        self.merged_cache.invalidate();
        &mut self.runtime
    }

    /// Ingests one batch into the next part (round-robin). In parallel
    /// mode the batch is handed to that part's persistent worker and the
    /// call returns immediately — consecutive calls land on *different*
    /// parts, so a stream of batches genuinely pipelines across the
    /// bank; reads synchronize through the flush barrier.
    pub fn ingest(&mut self, batch: &[u64]) {
        self.merged_cache.invalidate();
        self.total += batch.len() as u64;
        self.runtime.dispatch_ref(self.next, batch);
        self.next = (self.next + 1) % self.runtime.len();
    }

    /// Read access to part `j`'s summary, after a flush barrier.
    pub fn with_part<T>(&self, j: usize, f: impl FnOnce(&S) -> T) -> T {
        self.runtime.flush();
        self.runtime.with_summary(j, f)
    }

    /// The cached merged summary, building it if an ingest left the
    /// cache cold.
    fn merged_ref(&self) -> Result<&S, MergeError> {
        if let Some(s) = self.merged_cache.get() {
            return Ok(s);
        }
        self.runtime.flush();
        let mut acc = self.runtime.with_summary(0, S::clone);
        for j in 1..self.runtime.len() {
            self.runtime.with_summary(j, |s| acc.merge_from(s))?;
        }
        Ok(self.merged_cache.get_or_build(|| acc))
    }

    /// Merges the bank into one summary of everything ingested so far
    /// (the parts are left untouched, so ingestion can continue). A
    /// clone of the cached merge on the quiescent path.
    pub fn merged(&self) -> Result<S, MergeError> {
        Ok(self.merged_ref()?.clone())
    }

    /// The merged report (see [`PartitionedPipeline::merged`]). Repeated
    /// calls between ingests reuse both the cached merge *and* its own
    /// materialized report.
    pub fn report(&self) -> Result<Report, MergeError>
    where
        S: HeavyHitters,
    {
        Ok(self.merged_ref()?.report())
    }

    /// A [`Frozen`] serving view of everything ingested so far. Reuses
    /// both cached artifacts: the materialized merge and (when a prior
    /// query warmed it) its materialized report.
    pub fn frozen(&self) -> Result<Frozen<S>, MergeError>
    where
        S: HeavyHitters,
    {
        let merged = self.merged_ref()?;
        // Reporting through the cached instance warms (or hits) its
        // report cache; the clone itself starts cold, but the view
        // carries the finished report alongside it.
        let report = merged.report();
        Ok(Frozen {
            summary: merged.clone(),
            report,
        })
    }
}

/// Tumbling/sliding-window heavy hitters over any mergeable summary.
///
/// The stream is cut into fixed-length windows. Each window gets a
/// fresh summary from the factory; at a boundary the active summary is
/// *rotated* into a ring of completed windows and the ring is trimmed
/// to the configured depth. Queries merge the retained summaries — the
/// active window plus the `depth − 1` most recent completed ones — so
/// the report always covers the last `≤ depth` windows and old traffic
/// ages out with its window.
///
/// `depth = 1` gives tumbling windows (the report covers only the
/// in-progress window); larger depths give a sliding window with
/// window-granular eviction.
///
/// The factory receives the window index and **must** produce
/// merge-compatible summaries — deterministic summaries qualify as-is;
/// randomized ones must share a structure seed (vary only the stream
/// seed by window index, as the presets do).
///
/// # Example
///
/// ```
/// use hh_core::HeavyHitters;
/// use hh_pipeline::windowed_algo2;
/// use hh_core::HhParams;
///
/// let params = HhParams::new(0.05, 0.2).unwrap();
/// // 3-window sliding report over 100k-item windows.
/// let mut win = windowed_algo2(params, 1 << 30, 100_000, 3, 7).unwrap();
/// // Item 9 dominates early traffic, item 4 dominates late traffic.
/// let early: Vec<u64> = (0..150_000u64).map(|i| if i % 2 == 0 { 9 } else { i }).collect();
/// let late: Vec<u64> = (0..400_000u64).map(|i| if i % 2 == 0 { 4 } else { i }).collect();
/// win.ingest(&early);
/// win.ingest(&late);
/// let r = win.report().unwrap();
/// assert!(r.contains(4));   // current traffic is heavy
/// assert!(!r.contains(9));  // early traffic aged out with its windows
/// ```
#[derive(Debug)]
pub struct WindowedHh<S, F> {
    window_len: u64,
    depth: usize,
    /// Completed windows, oldest first; at most `depth − 1` retained.
    completed: VecDeque<S>,
    active: S,
    in_window: u64,
    window_index: u64,
    total: u64,
    make: F,
    /// Materialized merge of the live windows; dropped by every
    /// `ingest` (rotation included — it happens inside `ingest`).
    merged_cache: QueryCache<S>,
}

impl<S, F> WindowedHh<S, F>
where
    S: StreamSummary + MergeableSummary,
    F: FnMut(u64) -> S,
{
    /// A windowed pipeline with `window_len ≥ 1` items per window,
    /// reporting over the last `depth ≥ 1` windows.
    ///
    /// # Panics
    /// If `window_len` or `depth` is zero.
    pub fn new(window_len: u64, depth: usize, mut make: F) -> Self {
        assert!(window_len >= 1, "windows must hold at least one item");
        assert!(depth >= 1, "need at least one window in the report");
        let active = make(0);
        Self {
            window_len,
            depth,
            completed: VecDeque::new(),
            active,
            in_window: 0,
            window_index: 0,
            total: 0,
            make,
            merged_cache: QueryCache::new(),
        }
    }

    /// Items per window.
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Number of windows a report covers (active window included).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Index of the in-progress window (0-based).
    pub fn window_index(&self) -> u64 {
        self.window_index
    }

    /// Items ingested into the in-progress window so far.
    pub fn in_window(&self) -> u64 {
        self.in_window
    }

    /// Items ingested over the pipeline's lifetime (including aged-out
    /// windows).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Closes the active window and opens a fresh one.
    fn rotate(&mut self) {
        self.window_index += 1;
        let fresh = (self.make)(self.window_index);
        let done = std::mem::replace(&mut self.active, fresh);
        self.completed.push_back(done);
        while self.completed.len() > self.depth.saturating_sub(1) {
            self.completed.pop_front();
        }
        self.in_window = 0;
    }

    /// Ingests one batch, rotating at every window boundary it crosses
    /// (a batch may span several windows).
    pub fn ingest(&mut self, batch: &[u64]) {
        if !batch.is_empty() {
            self.merged_cache.invalidate();
        }
        let mut rest = batch;
        while !rest.is_empty() {
            let room = (self.window_len - self.in_window) as usize;
            let (now, later) = rest.split_at(room.min(rest.len()));
            self.active.insert_batch(now);
            self.total += now.len() as u64;
            self.in_window += now.len() as u64;
            if self.in_window == self.window_len {
                self.rotate();
            }
            rest = later;
        }
    }

    /// The summaries a report would merge: retained completed windows,
    /// oldest first, then the active window.
    pub fn live_windows(&self) -> impl Iterator<Item = &S> {
        self.completed.iter().chain(std::iter::once(&self.active))
    }

    /// The cached merge of the live windows, building it if an ingest
    /// left the cache cold.
    fn merged_ref(&self) -> Result<&S, MergeError>
    where
        S: Clone,
    {
        if let Some(s) = self.merged_cache.get() {
            return Ok(s);
        }
        let mut acc = self.completed.front().unwrap_or(&self.active).clone();
        for s in self.live_windows().skip(1) {
            acc.merge_from(s)?;
        }
        Ok(self.merged_cache.get_or_build(|| acc))
    }

    /// Merges the live windows into one summary of the last `≤ depth`
    /// windows' traffic (windows are left untouched). A clone of the
    /// cached merge on the quiescent path.
    pub fn merged(&self) -> Result<S, MergeError>
    where
        S: Clone,
    {
        Ok(self.merged_ref()?.clone())
    }

    /// The heavy hitters of the last `≤ depth` windows (see
    /// [`WindowedHh::merged`]). Repeated calls between ingests reuse
    /// both the cached merge *and* its own materialized report —
    /// serving a query burst between batches costs one merge plus one
    /// report build, total.
    pub fn report(&self) -> Result<Report, MergeError>
    where
        S: HeavyHitters + Clone,
    {
        Ok(self.merged_ref()?.report())
    }

    /// A [`Frozen`] serving view of the last `≤ depth` windows. Reuses
    /// both cached artifacts: the materialized merge and (when a prior
    /// query warmed it) its materialized report.
    pub fn frozen(&self) -> Result<Frozen<S>, MergeError>
    where
        S: HeavyHitters + Clone,
    {
        let merged = self.merged_ref()?;
        let report = merged.report();
        Ok(Frozen {
            summary: merged.clone(),
            report,
        })
    }
}

impl<S: hh_space::SpaceUsage, F> hh_space::SpaceUsage for WindowedHh<S, F> {
    fn model_bits(&self) -> u64 {
        self.completed
            .iter()
            .map(hh_space::SpaceUsage::model_bits)
            .sum::<u64>()
            + self.active.model_bits()
    }
    fn heap_bytes(&self) -> usize {
        self.completed
            .iter()
            .map(hh_space::SpaceUsage::heap_bytes)
            .sum::<usize>()
            + self.active.heap_bytes()
    }
}

/// A [`WindowedHh`] over seed-aligned Algorithm 2 instances: one
/// structure seed for every window (merge-compatible), per-window
/// stream seeds. Each window advertises `window_len · depth` as its
/// stream length so the sampling rate matches the report span.
pub fn windowed_algo2(
    params: HhParams,
    universe: u64,
    window_len: u64,
    depth: usize,
    seed: u64,
) -> Result<WindowedHh<OptimalListHh, impl FnMut(u64) -> OptimalListHh>, ParamError> {
    let m = window_len.saturating_mul(depth as u64).max(1);
    // Validate the configuration once, eagerly; the factory then only
    // varies the stream seed, which cannot fail.
    OptimalListHh::with_seeds(params, universe, m, mix64(seed), 0)?;
    let make = move |w: u64| {
        OptimalListHh::with_seeds(
            params,
            universe,
            m,
            mix64(seed),
            stream_seed(seed, w as usize),
        )
        .expect("validated at construction")
    };
    Ok(WindowedHh::new(window_len, depth, make))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_baselines::{MisraGriesBaseline, SpaceSaving};
    use hh_core::FrequencyEstimator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(m: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream = Vec::with_capacity(m as usize);
        for &(id, frac) in heavy {
            stream.extend(std::iter::repeat_n(id, (frac * m as f64) as usize));
        }
        while stream.len() < m as usize {
            stream.push(1_000_000 + rng.gen_range(0..4096u64));
        }
        use rand::seq::SliceRandom;
        stream.shuffle(&mut rng);
        stream
    }

    #[test]
    fn keys_route_to_exactly_one_shard() {
        let pipe = ShardedPipeline::new(4, 7, 0.0, |_| MisraGriesBaseline::new(0.1, 0.3, 1 << 20));
        for x in 0..10_000u64 {
            let s = pipe.shard_of(x);
            assert!(s < 4);
            assert_eq!(s, pipe.shard_of(x), "routing must be stable");
        }
    }

    #[test]
    fn routing_spreads_keys_roughly_evenly() {
        let pipe = ShardedPipeline::new(4, 3, 0.0, |_| MisraGriesBaseline::new(0.1, 0.3, 1 << 20));
        let mut loads = [0usize; 4];
        for x in 0..40_000u64 {
            loads[pipe.shard_of(x)] += 1;
        }
        for (s, &l) in loads.iter().enumerate() {
            assert!((6_000..14_000).contains(&l), "shard {s} load {l}");
        }
    }

    #[test]
    fn single_shard_pipeline_equals_direct_summary() {
        let stream = planted(50_000, &[(7, 0.4)], 1);
        let mut pipe =
            ShardedPipeline::new(1, 9, 0.0, |_| MisraGriesBaseline::new(0.05, 0.2, 1 << 21));
        for chunk in stream.chunks(4096) {
            pipe.ingest(chunk);
        }
        let mut direct = MisraGriesBaseline::new(0.05, 0.2, 1 << 21);
        direct.insert_all(&stream);
        for probe in [7u64, 1_000_001, 1_002_222] {
            assert_eq!(
                pipe.with_summary(0, |s| s.estimate(probe)),
                direct.estimate(probe)
            );
        }
        assert_eq!(pipe.total(), 50_000);
    }

    #[test]
    fn shards_see_complete_per_key_substreams() {
        // Deterministic summaries: a key's count in its shard must be its
        // full stream count (never split), so the exact MG guarantee
        // applies to the shard substream.
        let stream = planted(60_000, &[(7, 0.3), (8, 0.2)], 2);
        let mut pipe = ShardedPipeline::new(4, 11, 0.15, |_| {
            SpaceSaving::with_capacity(64, 0.2, 1 << 21)
        });
        for chunk in stream.chunks(8192) {
            pipe.ingest(chunk);
        }
        for item in [7u64, 8] {
            let shard = pipe.shard_of(item);
            let truth = stream.iter().filter(|&&x| x == item).count() as f64;
            let est = pipe.with_summary(shard, |s| s.estimate(item));
            // Space-Saving never undercounts and its overshoot is bounded
            // by the SHARD substream length over capacity.
            assert!(est >= truth, "item {item}: {est} < {truth}");
            assert!(est <= truth + 60_000.0 / 64.0, "item {item}: {est}");
            // Other shards know nothing about the key.
            for (j, est) in pipe.map_summaries(|s| s.estimate(item)).iter().enumerate() {
                if j != shard {
                    assert_eq!(*est, 0.0, "key leaked to shard {j}");
                }
            }
        }
    }

    #[test]
    fn union_report_finds_heavy_and_drops_shard_local_noise() {
        let m = 120_000u64;
        let stream = planted(m, &[(7, 0.35), (8, 0.22)], 3);
        for shards in [1usize, 2, 4] {
            let mut pipe = ShardedPipeline::new(shards, 13, 0.15, |_| {
                SpaceSaving::with_capacity(64, 0.2, 1 << 21)
            });
            for chunk in stream.chunks(4096) {
                pipe.ingest(chunk);
            }
            let r = pipe.report();
            assert!(r.contains(7), "{shards} shards: missing 35% item");
            assert!(r.contains(8), "{shards} shards: missing 22% item");
            // Background ids are ~0.03% each: nothing below the global
            // threshold survives the union cut.
            for e in r.entries() {
                assert!(e.count >= 0.15 * m as f64);
                assert!([7, 8].contains(&e.item), "spurious item {}", e.item);
            }
        }
    }

    #[test]
    fn algo2_preset_reports_planted_heavy_hitters() {
        let m = 400_000u64;
        let stream = planted(m, &[(7, 0.30), (8, 0.16)], 4);
        let params = HhParams::with_delta(0.05, 0.1, 0.1).unwrap();
        let mut pipe = sharded_algo2(params, 1 << 40, m, 4, 99).unwrap();
        for chunk in stream.chunks(16 * 1024) {
            pipe.ingest(chunk);
        }
        let r = pipe.report();
        for (item, frac) in [(7u64, 0.30), (8, 0.16)] {
            assert!(r.contains(item), "missing heavy item {item}");
            let est = r.estimate(item).unwrap();
            assert!(
                (est - frac * m as f64).abs() <= 0.05 * m as f64,
                "item {item}: est {est}"
            );
        }
    }

    #[test]
    fn algo1_preset_reports_planted_heavy_hitters() {
        let m = 300_000u64;
        let stream = planted(m, &[(7, 0.30)], 5);
        let params = HhParams::with_delta(0.04, 0.12, 0.1).unwrap();
        let mut pipe = sharded_algo1(params, 1 << 40, m, 2, 17).unwrap();
        for chunk in stream.chunks(16 * 1024) {
            pipe.ingest(chunk);
        }
        assert!(pipe.report().contains(7));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedPipeline::new(0, 1, 0.1, |_| MisraGriesBaseline::new(0.1, 0.3, 16));
    }

    #[test]
    fn partition_and_merge_matches_definition_one() {
        let m = 400_000u64;
        let stream = planted(m, &[(7, 0.30), (8, 0.16)], 11);
        let params = HhParams::with_delta(0.05, 0.1, 0.1).unwrap();
        for parts in [1usize, 2, 5] {
            let bank = seed_aligned_algo2(params, 1 << 40, m, parts, 77).unwrap();
            let merged = partition_and_merge(bank, &stream).unwrap();
            let r = merged.report();
            for (item, frac) in [(7u64, 0.30), (8, 0.16)] {
                assert!(r.contains(item), "{parts} parts: missing {item}");
                let est = r.estimate(item).unwrap();
                assert!(
                    (est - frac * m as f64).abs() <= 0.05 * m as f64,
                    "{parts} parts: item {item} est {est}"
                );
            }
        }
    }

    #[test]
    fn partitioned_pipeline_accumulates_across_batches() {
        let m = 300_000u64;
        let stream = planted(m, &[(7, 0.35)], 12);
        let params = HhParams::with_delta(0.04, 0.12, 0.1).unwrap();
        let bank = seed_aligned_algo1(params, 1 << 40, m, 3, 5).unwrap();
        let mut pipe = PartitionedPipeline::new(bank);
        for chunk in stream.chunks(8192) {
            pipe.ingest(chunk);
        }
        assert_eq!(pipe.total(), m);
        assert_eq!(pipe.num_parts(), 3);
        let r = pipe.report().unwrap();
        assert!(r.contains(7));
        // Parts are untouched by reporting: a second merge agrees.
        assert_eq!(pipe.report().unwrap().entries(), r.entries());
    }

    #[test]
    fn partition_and_merge_rejects_misaligned_banks() {
        let params = HhParams::new(0.05, 0.2).unwrap();
        let a = hh_core::OptimalListHh::with_seeds(params, 1 << 20, 10_000, 1, 1).unwrap();
        let b = hh_core::OptimalListHh::with_seeds(params, 1 << 20, 10_000, 2, 2).unwrap();
        let stream: Vec<u64> = (0..10_000).collect();
        assert!(partition_and_merge(vec![a, b], &stream).is_err());
    }

    #[test]
    fn sequential_fallback_matches_direct_shard_state() {
        // Whatever ingestion mode the host picks (this CI box may have
        // any core count), the per-shard state must equal routing the
        // keys by hand and driving each shard's insert_batch directly.
        let stream = planted(40_000, &[(7, 0.4)], 8);
        let mut pipe =
            ShardedPipeline::new(4, 21, 0.0, |_| MisraGriesBaseline::new(0.05, 0.2, 1 << 21));
        let mut by_hand: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for chunk in stream.chunks(4096) {
            pipe.ingest(chunk);
        }
        for &x in &stream {
            by_hand[pipe.shard_of(x)].push(x);
        }
        for (j, keys) in by_hand.iter().enumerate() {
            let mut direct = MisraGriesBaseline::new(0.05, 0.2, 1 << 21);
            // Reproduce the per-batch chunking the pipeline saw.
            let mut scratch: Vec<u64> = Vec::new();
            for chunk in stream.chunks(4096) {
                scratch.clear();
                scratch.extend(chunk.iter().filter(|&&x| pipe.shard_of(x) == j));
                direct.insert_batch(&scratch);
            }
            assert_eq!(
                pipe.with_summary(j, |s| s.report().entries().to_vec()),
                direct.report().entries(),
                "shard {j} diverged (keys {})",
                keys.len()
            );
        }
    }

    #[test]
    fn partitioned_queries_ride_the_cached_merge() {
        let m = 200_000u64;
        let stream = planted(m, &[(7, 0.35)], 14);
        let params = HhParams::with_delta(0.05, 0.15, 0.1).unwrap();
        let bank = seed_aligned_algo2(params, 1 << 40, m, 3, 6).unwrap();
        let mut pipe = PartitionedPipeline::new(bank);
        for chunk in stream.chunks(8192) {
            pipe.ingest(chunk);
        }
        // Quiescent burst: identical answers, and identical to a fresh
        // (cache-cold, clone-based) merge.
        let first = pipe.report().unwrap();
        let burst = pipe.report().unwrap();
        assert_eq!(first.entries(), burst.entries());
        assert_eq!(first.entries(), pipe.merged().unwrap().report().entries());
        // Ingest invalidates: the next report reflects the new batch.
        let before_total = pipe.total();
        pipe.ingest(&[7; 1000]);
        assert_eq!(pipe.total(), before_total + 1000);
        let after = pipe.report().unwrap();
        assert_eq!(
            after.entries(),
            pipe.merged().unwrap().report().entries(),
            "cached report went stale after ingest"
        );
    }

    #[test]
    fn frozen_view_serves_borrowed_reports_and_estimates() {
        let m = 150_000u64;
        let stream = planted(m, &[(7, 0.4), (8, 0.2)], 15);
        let params = HhParams::with_delta(0.05, 0.15, 0.1).unwrap();
        let bank = seed_aligned_algo2(params, 1 << 40, m, 2, 9).unwrap();
        let mut pipe = PartitionedPipeline::new(bank);
        for chunk in stream.chunks(4096) {
            pipe.ingest(chunk);
        }
        let frozen = pipe.frozen().unwrap();
        // Borrowed report, identical to the pipeline's.
        assert_eq!(frozen.report().entries(), pipe.report().unwrap().entries());
        assert!(frozen.report().contains(7));
        // Point queries agree with the underlying summary.
        let merged = pipe.merged().unwrap();
        for probe in [7u64, 8, 999_999] {
            assert_eq!(frozen.estimate(probe), merged.estimate(probe));
        }
        // The view is freely cloneable/shareable and unfreezes.
        let again = frozen.clone();
        let inner = again.into_inner();
        assert_eq!(inner.report().entries(), frozen.report().entries());
    }

    #[test]
    fn windowed_frozen_and_cached_report_track_rotation() {
        let params = HhParams::with_delta(0.05, 0.2, 0.1).unwrap();
        let window = 30_000u64;
        let mut win = windowed_algo2(params, 1 << 30, window, 2, 11).unwrap();
        let early: Vec<u64> = (0..window)
            .map(|i| if i % 2 == 0 { 9 } else { i })
            .collect();
        win.ingest(&early);
        let frozen = win.frozen().unwrap();
        assert!(frozen.report().contains(9));
        assert_eq!(frozen.report().entries(), win.report().unwrap().entries());
        // Rotate item 9 out; the cached path must follow.
        let late: Vec<u64> = (0..3 * window)
            .map(|i| if i % 2 == 0 { 4 } else { 100_000 + i })
            .collect();
        win.ingest(&late);
        let r = win.report().unwrap();
        assert!(r.contains(4) && !r.contains(9));
        // The old frozen view is unchanged — that is its point.
        assert!(frozen.report().contains(9));
    }

    #[test]
    fn windowed_summary_ages_out_old_heavy_hitters() {
        // Deterministic summary for an exact aging check.
        let window = 10_000u64;
        let mut win = WindowedHh::new(window, 2, |_| MisraGriesBaseline::new(0.05, 0.2, 1 << 20));
        // Window 0 and 1 traffic: item 9 heavy.
        let old: Vec<u64> = (0..2 * window)
            .map(|i| if i % 2 == 0 { 9 } else { i })
            .collect();
        win.ingest(&old);
        assert!(win.report().unwrap().contains(9));
        // Three more windows of item-4 traffic push 9 out of the ring.
        let new: Vec<u64> = (0..3 * window)
            .map(|i| if i % 2 == 0 { 4 } else { 100_000 + i })
            .collect();
        win.ingest(&new);
        let r = win.report().unwrap();
        assert!(r.contains(4));
        assert!(!r.contains(9), "aged-out window still reported");
        assert_eq!(win.total(), 5 * window);
        assert_eq!(win.window_index(), 5);
        assert_eq!(win.in_window(), 0);
    }

    #[test]
    fn windowed_algo2_preset_slides_over_traffic() {
        let params = HhParams::with_delta(0.05, 0.2, 0.1).unwrap();
        let window = 50_000u64;
        let mut win = windowed_algo2(params, 1 << 30, window, 3, 9).unwrap();
        let early: Vec<u64> = (0..window)
            .map(|i| if i % 2 == 0 { 9 } else { i })
            .collect();
        win.ingest(&early);
        assert!(win.report().unwrap().contains(9));
        let late: Vec<u64> = (0..4 * window)
            .map(|i| if i % 2 == 0 { 4 } else { 200_000 + i })
            .collect();
        win.ingest(&late);
        let r = win.report().unwrap();
        assert!(r.contains(4), "current heavy item missing");
        assert!(!r.contains(9), "expired window still reported");
    }

    #[test]
    fn windowed_space_is_depth_windows_not_stream_length() {
        use hh_space::SpaceUsage;
        let window = 5_000u64;
        let mut win = WindowedHh::new(window, 3, |_| MisraGriesBaseline::new(0.05, 0.2, 1 << 20));
        let mut probe_bits = Vec::new();
        for round in 0..10u64 {
            let batch: Vec<u64> = (0..window).map(|i| (round * window + i) % 97).collect();
            win.ingest(&batch);
            probe_bits.push(win.model_bits());
        }
        // After the ring fills, space stops growing with stream length.
        let late_max = *probe_bits[3..].iter().max().unwrap();
        let late_min = *probe_bits[3..].iter().min().unwrap();
        assert!(
            late_max <= 2 * late_min,
            "windowed space drifts: {probe_bits:?}"
        );
    }
}
