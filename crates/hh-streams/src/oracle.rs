//! Exact ground truth for scoring the streaming algorithms.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Exact frequency oracle: the (space-unconstrained) reference that every
/// experiment compares streaming summaries against.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactCounts {
    counts: HashMap<u64, u64>,
    len: u64,
}

impl ExactCounts {
    /// Empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Oracle over a full stream.
    pub fn from_stream(stream: &[u64]) -> Self {
        let mut o = Self::new();
        for &x in stream {
            o.insert(x);
        }
        o
    }

    /// Records one occurrence.
    pub fn insert(&mut self, item: u64) {
        *self.counts.entry(item).or_insert(0) += 1;
        self.len += 1;
    }

    /// Stream length `m`.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no items were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct items seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Exact frequency of `item` (zero if unseen).
    pub fn freq(&self, item: u64) -> u64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// Items with `f_i > φ·m` ("must report" set of Definition 1), sorted
    /// by decreasing frequency.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(u64, u64)> {
        let threshold = phi * self.len as f64;
        let mut hh: Vec<(u64, u64)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c as f64 > threshold)
            .map(|(&i, &c)| (i, c))
            .collect();
        hh.sort_unstable_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        hh
    }

    /// Items with `f_i ≤ (φ−ε)·m` ("must not report" set of Definition 1).
    pub fn forbidden(&self, phi: f64, eps: f64) -> Vec<u64> {
        let threshold = (phi - eps) * self.len as f64;
        let mut v: Vec<u64> = self
            .counts
            .iter()
            .filter(|&(_, &c)| (c as f64) <= threshold)
            .map(|(&i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// The maximum frequency and one witness item.
    pub fn max(&self) -> Option<(u64, u64)> {
        self.counts
            .iter()
            .map(|(&i, &c)| (i, c))
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
    }

    /// The minimum frequency over the whole universe `[0, universe)` —
    /// items never seen have frequency zero, matching the ε-Minimum
    /// problem statement ("an item with frequency zero ... is a valid
    /// solution").
    pub fn min_over_universe(&self, universe: u64) -> u64 {
        if (self.counts.len() as u64) < universe {
            0
        } else {
            self.counts.values().copied().min().unwrap_or(0)
        }
    }

    /// Whether `item` attains the universe minimum frequency within an
    /// additive `slack`.
    pub fn is_eps_minimum(&self, item: u64, universe: u64, slack: u64) -> bool {
        self.freq(item) <= self.min_over_universe(universe) + slack
    }

    /// All `(item, count)` pairs sorted by decreasing count.
    pub fn sorted_counts(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(&i, &c)| (i, c)).collect();
        v.sort_unstable_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        v
    }

    /// Merges another oracle into this one (used by the sharded runner).
    pub fn merge(&mut self, other: &ExactCounts) {
        for (&i, &c) in &other.counts {
            *self.counts.entry(i).or_insert(0) += c;
        }
        self.len += other.len;
    }

    /// `F₁^{res(k)}`: total frequency excluding the `k` largest items —
    /// the tail quantity in the \[BICS10\] guarantee quoted in §1.
    pub fn residual_mass(&self, k: usize) -> u64 {
        let sorted = self.sorted_counts();
        sorted.iter().skip(k).map(|&(_, c)| c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(items: &[u64]) -> ExactCounts {
        ExactCounts::from_stream(items)
    }

    #[test]
    fn basic_counting() {
        let o = oracle(&[1, 2, 2, 3, 3, 3]);
        assert_eq!(o.len(), 6);
        assert_eq!(o.distinct(), 3);
        assert_eq!(o.freq(3), 3);
        assert_eq!(o.freq(42), 0);
    }

    #[test]
    fn heavy_hitters_strict_threshold() {
        // m = 10, φ = 0.3 → need f > 3.
        let o = oracle(&[1, 1, 1, 1, 2, 2, 2, 3, 3, 4]);
        let hh = o.heavy_hitters(0.3);
        assert_eq!(hh, vec![(1, 4)]);
        // φ = 0.25 → need f > 2.5, so items 1 and 2.
        let hh = o.heavy_hitters(0.25);
        assert_eq!(hh, vec![(1, 4), (2, 3)]);
    }

    #[test]
    fn forbidden_set_complements() {
        let o = oracle(&[1, 1, 1, 1, 2, 2, 2, 3, 3, 4]);
        // φ = 0.4, ε = 0.1 → forbidden iff f ≤ 3.
        let fb = o.forbidden(0.4, 0.1);
        assert_eq!(fb, vec![2, 3, 4]);
    }

    #[test]
    fn max_and_min() {
        let o = oracle(&[5, 5, 6]);
        assert_eq!(o.max(), Some((5, 2)));
        // Universe of 10: unseen items exist, min is 0.
        assert_eq!(o.min_over_universe(10), 0);
        // Universe of exactly the two seen items: min is 1.
        assert_eq!(o.min_over_universe(2), 1);
        assert!(o.is_eps_minimum(6, 2, 0));
        assert!(!o.is_eps_minimum(5, 2, 0));
        assert!(o.is_eps_minimum(5, 2, 1));
    }

    #[test]
    fn residual_mass_drops_top_k() {
        let o = oracle(&[1, 1, 1, 2, 2, 3]);
        assert_eq!(o.residual_mass(0), 6);
        assert_eq!(o.residual_mass(1), 3);
        assert_eq!(o.residual_mass(2), 1);
        assert_eq!(o.residual_mass(3), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = oracle(&[1, 2]);
        let b = oracle(&[2, 3]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.freq(2), 2);
        assert_eq!(a.distinct(), 3);
    }

    #[test]
    fn empty_oracle() {
        let o = ExactCounts::new();
        assert!(o.is_empty());
        assert_eq!(o.max(), None);
        assert_eq!(o.heavy_hitters(0.1), vec![]);
        assert_eq!(o.min_over_universe(5), 0);
    }
}
