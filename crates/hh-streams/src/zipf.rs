//! Zipf-distributed item source via rejection-inversion.
//!
//! Implements the Hörmann–Derflinger rejection-inversion sampler for
//! `p(k) ∝ k^{−a}` on `{1, …, n}` (the method behind Apache Commons'
//! `RejectionInversionZipfSampler`): `O(1)` expected time per draw and no
//! `O(n)` table, so the harness can use universes up to `2⁶³` — which the
//! space experiments need, since the `φ⁻¹ log n` term only dominates for
//! large `n`.
//!
//! Item ids are optionally scrambled through a linear bijection of `[n]`
//! so that "heavy" ids are not simply `0, 1, 2, …` (several baseline
//! structures would otherwise enjoy accidental locality).

use crate::ItemSource;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Zipf(`a`) sampler over `[0, n)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfGenerator {
    n: u64,
    exponent: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
    scramble: Option<(u64, u64)>,
}

impl ZipfGenerator {
    /// Zipf sampler with universe size `n ≥ 1` and exponent `a > 0`.
    ///
    /// # Panics
    /// If `n` is zero or `a` is not positive and finite.
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n >= 1, "universe must be non-empty");
        assert!(
            exponent > 0.0 && exponent.is_finite(),
            "exponent must be positive"
        );
        let mut g = Self {
            n,
            exponent,
            h_x1: 0.0,
            h_n: 0.0,
            s: 0.0,
            scramble: None,
        };
        g.h_x1 = g.h_integral(1.5) - 1.0;
        g.h_n = g.h_integral(n as f64 + 0.5);
        g.s = 2.0 - g.h_integral_inverse(g.h_integral(2.5) - g.h(2.0));
        g
    }

    /// Scrambles output ids through the bijection `x ↦ (a·x + b) mod n`
    /// (`a` is forced coprime to `n`), decoupling frequency rank from id
    /// order.
    pub fn scrambled<R: Rng + ?Sized>(mut self, rng: &mut R) -> Self {
        let n = self.n;
        if n <= 2 {
            return self;
        }
        let mut a = rng.gen_range(1..n) | 1;
        while gcd(a, n) != 1 {
            a = (a + 2) % n;
            if a == 0 {
                a = 1;
            }
        }
        let b = rng.gen_range(0..n);
        self.scramble = Some((a, b));
        self
    }

    /// The distribution exponent `a`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of the rank-`r` item (1-indexed rank).
    pub fn rank_probability(&self, rank: u64) -> f64 {
        assert!(rank >= 1 && rank <= self.n);
        let z: f64 = (1..=self.n.min(1_000_000))
            .map(|k| (k as f64).powf(-self.exponent))
            .sum();
        (rank as f64).powf(-self.exponent) / z
    }

    /// The id the rank-`r` (1-indexed) item is emitted as, accounting for
    /// scrambling; rank 1 is the most frequent item.
    pub fn id_of_rank(&self, rank: u64) -> u64 {
        let raw = rank - 1;
        match self.scramble {
            Some((a, b)) => ((raw as u128 * a as u128 + b as u128) % self.n as u128) as u64,
            None => raw,
        }
    }

    // h(x) = x^{-a}
    fn h(&self, x: f64) -> f64 {
        (-self.exponent * x.ln()).exp()
    }

    // H(x) = (x^{1−a} − 1)/(1−a), computed stably through (e^t − 1)/t so
    // that a = 1 (where H(x) = ln x) is handled by the same code path.
    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - self.exponent) * log_x) * log_x
    }

    // H^{-1}(u)
    fn h_integral_inverse(&self, u: f64) -> f64 {
        let mut t = u * (1.0 - self.exponent);
        if t < -1.0 {
            t = -1.0;
        }
        (helper1(t) * u).exp()
    }
}

// ln(1+t)/t, stable near 0.
fn helper1(t: f64) -> f64 {
    if t.abs() > 1e-8 {
        t.ln_1p() / t
    } else {
        1.0 - t / 2.0 + t * t / 3.0
    }
}

// (e^t − 1)/t, stable near 0.
fn helper2(t: f64) -> f64 {
    if t.abs() > 1e-8 {
        t.exp_m1() / t
    } else {
        1.0 + t / 2.0 + t * t / 6.0
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl ItemSource for ZipfGenerator {
    fn next_item<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let k = loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inverse(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= self.h_integral(k + 0.5) - self.h(k) {
                break k as u64;
            }
        };
        self.id_of_rank(k)
    }

    fn universe(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_top_prob(n: u64, a: f64, draws: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = ZipfGenerator::new(n, a);
        let top = g.id_of_rank(1);
        let hits = (0..draws).filter(|_| g.next_item(&mut rng) == top).count();
        hits as f64 / draws as f64
    }

    #[test]
    fn outputs_stay_in_universe() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = ZipfGenerator::new(100, 1.2).scrambled(&mut rng);
        for _ in 0..10_000 {
            assert!(g.next_item(&mut rng) < 100);
        }
    }

    #[test]
    fn top_item_frequency_matches_theory() {
        for &(n, a) in &[(100u64, 1.0f64), (1000, 1.5), (50, 0.8)] {
            let g = ZipfGenerator::new(n, a);
            let p1 = g.rank_probability(1);
            let emp = empirical_top_prob(n, a, 60_000, 7);
            assert!(
                (emp - p1).abs() < 0.02 + 0.1 * p1,
                "n={n} a={a}: emp {emp} vs theory {p1}"
            );
        }
    }

    #[test]
    fn monotone_decreasing_in_rank() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = ZipfGenerator::new(64, 1.1);
        let mut counts = vec![0u32; 64];
        for _ in 0..200_000 {
            counts[g.next_item(&mut rng) as usize] += 1;
        }
        // Rank 1 clearly above rank 4 above rank 16.
        assert!(counts[0] > counts[3] && counts[3] > counts[15]);
    }

    #[test]
    fn scrambling_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = ZipfGenerator::new(101, 1.0).scrambled(&mut rng);
        let ids: std::collections::HashSet<u64> = (1..=101).map(|r| g.id_of_rank(r)).collect();
        assert_eq!(ids.len(), 101);
        assert!(ids.iter().all(|&x| x < 101));
    }

    #[test]
    fn huge_universe_works_without_tables() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut g = ZipfGenerator::new(1 << 62, 1.3);
        for _ in 0..1000 {
            let x = g.next_item(&mut rng);
            assert!(x < (1 << 62));
        }
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn bad_exponent_rejected() {
        ZipfGenerator::new(10, 0.0);
    }
}
