//! CIDR-structured network workloads: heavy prefixes over Zipf hosts.
//!
//! The network-telemetry scenario for the dyadic range-query machinery:
//! traffic concentrates in a handful of *address blocks* (an AS, a data
//! center, a scanner's /16), while inside each block the per-host
//! distribution is itself skewed. [`CidrZipf`] plants `/8`–`/24`-style
//! prefixes with exact marginal masses over the 32-bit IPv4 space and
//! fills each block with a Zipf host tail, so the *prefix* frequencies
//! are designed (the dyadic recall tests need ground truth) while the
//! *point* frequencies look like real traffic.

use crate::{ItemSource, ZipfGenerator};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of address bits in the generated keys (IPv4).
pub const KEY_BITS: u32 = 32;

/// One planted block: `value` is the prefix's leading bits, `len` its
/// length in bits (CIDR `/len`), `mass` its exact marginal probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Block {
    value: u64,
    len: u32,
    mass: f64,
    hosts: ZipfGenerator,
}

impl Block {
    /// First address of the block.
    fn lo(&self) -> u64 {
        self.value << (KEY_BITS - self.len)
    }

    /// Last address of the block (inclusive).
    fn hi(&self) -> u64 {
        self.lo() + ((1u64 << (KEY_BITS - self.len)) - 1)
    }

    fn contains(&self, addr: u64) -> bool {
        addr >> (KEY_BITS - self.len) == self.value
    }
}

/// Item source over the 32-bit address space with planted heavy CIDR
/// prefixes and Zipf-distributed hosts inside each prefix; the
/// remaining mass is uniform background that avoids every planted
/// block, so the planted masses stay exact (the [`PlantedGenerator`]
/// convention, lifted from points to prefixes).
///
/// [`PlantedGenerator`]: crate::PlantedGenerator
///
/// # Example
///
/// ```
/// use hh_streams::{collect_stream, CidrZipf};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // 40% of packets from 10.0.0.0/8, 25% from 192.168.0.0/16.
/// let mut g = CidrZipf::new(vec![(10, 8, 0.40), (0xC0A8, 16, 0.25)], 1.1);
/// let mut rng = StdRng::seed_from_u64(7);
/// let stream = collect_stream(&mut g, 50_000, &mut rng);
/// let in_ten = stream.iter().filter(|&&a| a >> 24 == 10).count();
/// assert!((in_ten as f64 / 50_000.0 - 0.40).abs() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CidrZipf {
    blocks: Vec<Block>,
    planted_mass: f64,
}

impl CidrZipf {
    /// Plants `(prefix_value, prefix_len, mass)` blocks with Zipf(`
    /// host_exponent`) hosts inside each. `prefix_value` holds the
    /// block's leading `prefix_len` bits (e.g. `(10, 8, 0.4)` is
    /// 10.0.0.0/8 at 40%).
    ///
    /// # Panics
    /// If a prefix length is outside `1..=32`, a value does not fit its
    /// length, masses are not positive or sum above 1, or two blocks
    /// overlap (one prefix extends another — block masses would stop
    /// being marginals).
    pub fn new(prefixes: Vec<(u64, u32, f64)>, host_exponent: f64) -> Self {
        let mass: f64 = prefixes.iter().map(|&(_, _, p)| p).sum();
        assert!(mass < 1.0 + 1e-12, "planted mass must be at most 1");
        for &(value, len, p) in &prefixes {
            assert!((1..=KEY_BITS).contains(&len), "prefix length /{len}");
            assert!(
                len == 64 || value >> len == 0,
                "prefix value {value:#x} does not fit /{len}"
            );
            assert!(p > 0.0, "masses must be positive");
        }
        for (i, &(va, la, _)) in prefixes.iter().enumerate() {
            for &(vb, lb, _) in &prefixes[..i] {
                let l = la.min(lb);
                assert!(
                    va >> (la - l) != vb >> (lb - l),
                    "blocks {va:#x}/{la} and {vb:#x}/{lb} overlap"
                );
            }
        }
        let blocks = prefixes
            .into_iter()
            .map(|(value, len, mass)| Block {
                value,
                len,
                mass,
                hosts: ZipfGenerator::new(1u64 << (KEY_BITS - len), host_exponent),
            })
            .collect();
        Self {
            blocks,
            planted_mass: mass,
        }
    }

    /// The planted `(prefix_value, prefix_len, mass)` triples.
    pub fn planted(&self) -> Vec<(u64, u32, f64)> {
        self.blocks
            .iter()
            .map(|b| (b.value, b.len, b.mass))
            .collect()
    }

    /// The inclusive address range `[lo, hi]` of planted block `i`.
    pub fn block_range(&self, i: usize) -> (u64, u64) {
        (self.blocks[i].lo(), self.blocks[i].hi())
    }
}

impl ItemSource for CidrZipf {
    fn next_item<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let mut u: f64 = rng.gen();
        if u < self.planted_mass {
            for i in 0..self.blocks.len() {
                if u < self.blocks[i].mass {
                    let lo = self.blocks[i].lo();
                    // Zipf rank 0 is the block's hottest host; the
                    // suffix is the rank itself (no scramble), so the
                    // heavy host of 10.0.0.0/8 is 10.0.0.0 — readable
                    // in examples, irrelevant to the sketches (they
                    // hash).
                    return lo + self.blocks[i].hosts.next_item(rng);
                }
                u -= self.blocks[i].mass;
            }
        }
        // Background: uniform over addresses outside every block.
        loop {
            let x = rng.gen_range(0..1u64 << KEY_BITS);
            if !self.blocks.iter().any(|b| b.contains(x)) {
                return x;
            }
        }
    }

    fn universe(&self) -> u64 {
        1u64 << KEY_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_stream;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn telecom() -> CidrZipf {
        CidrZipf::new(
            vec![(10, 8, 0.35), (0xC0A8, 16, 0.20), (0xC00002, 24, 0.10)],
            1.1,
        )
    }

    #[test]
    fn planted_prefix_masses_hit_targets() {
        let mut g = telecom();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000usize;
        let stream = collect_stream(&mut g, n, &mut rng);
        for (i, (value, len, mass)) in g.planted().into_iter().enumerate() {
            let (lo, hi) = g.block_range(i);
            assert_eq!(lo >> (KEY_BITS - len), value);
            let hits = stream.iter().filter(|&&a| lo <= a && a <= hi).count();
            let f = hits as f64 / n as f64;
            assert!((f - mass).abs() < 0.01, "block {value:#x}/{len}: {f}");
        }
    }

    #[test]
    fn hosts_inside_a_block_are_zipf_skewed() {
        let mut g = telecom();
        let mut rng = StdRng::seed_from_u64(2);
        let stream = collect_stream(&mut g, 200_000, &mut rng);
        let (lo, hi) = g.block_range(0);
        let in_block: Vec<u64> = stream
            .iter()
            .copied()
            .filter(|&a| lo <= a && a <= hi)
            .collect();
        // The hottest host (rank 1 = the block's base address) carries
        // far more than a uniform share of the block.
        let top = in_block.iter().filter(|&&a| a == lo).count() as f64;
        let uniform_share = in_block.len() as f64 / (hi - lo + 1) as f64;
        assert!(top > 50.0 * uniform_share.max(1.0), "top {top}");
    }

    #[test]
    fn background_avoids_planted_blocks_and_masses_are_exact_marginals() {
        let mut g = CidrZipf::new(vec![(1, 1, 0.5)], 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let stream = collect_stream(&mut g, 50_000, &mut rng);
        // Half the address space is planted; the background half must
        // carry the other ~50% exactly.
        let upper = stream.iter().filter(|&&a| a >> 31 == 1).count() as f64;
        assert!((upper / 50_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn same_seed_streams_are_bit_identical() {
        let mut a = telecom();
        let mut b = telecom();
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        assert_eq!(
            collect_stream(&mut a, 10_000, &mut ra),
            collect_stream(&mut b, 10_000, &mut rb)
        );
        let mut rc = StdRng::seed_from_u64(10);
        assert_ne!(
            collect_stream(&mut a, 10_000, &mut rc),
            collect_stream(&mut b, 10_000, &mut rb)
        );
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn nested_blocks_rejected() {
        CidrZipf::new(vec![(10, 8, 0.3), (10 << 8 | 1, 16, 0.1)], 1.1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_prefix_value_rejected() {
        CidrZipf::new(vec![(256, 8, 0.3)], 1.1);
    }

    #[test]
    #[should_panic(expected = "at most 1")]
    fn overfull_mass_rejected() {
        CidrZipf::new(vec![(1, 8, 0.6), (2, 8, 0.6)], 1.1);
    }
}
