//! Non-Zipf item sources and adversarial stream arrangements.

use crate::ItemSource;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Uniform item source over `[0, n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformGenerator {
    n: u64,
}

impl UniformGenerator {
    /// Uniform source over a universe of size `n ≥ 1`.
    pub fn new(n: u64) -> Self {
        assert!(n >= 1, "universe must be non-empty");
        Self { n }
    }
}

impl ItemSource for UniformGenerator {
    fn next_item<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.n)
    }
    fn universe(&self) -> u64 {
        self.n
    }
}

/// Item source with explicitly *planted* heavy items over a uniform
/// background — the workload for the guarantee experiments (E11), because
/// the true frequencies are designed, not sampled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedGenerator {
    /// `(item, probability)` for the planted items.
    heavy: Vec<(u64, f64)>,
    /// Background universe `[0, n)`; background ids colliding with planted
    /// ids are re-drawn so planted probabilities stay exact.
    n: u64,
    heavy_mass: f64,
}

impl PlantedGenerator {
    /// Plants `heavy` items with the given marginal probabilities; the
    /// remaining mass is uniform over `[0, n)` minus the planted ids.
    ///
    /// # Panics
    /// If probabilities are not in (0,1), sum above 1, ids repeat, or ids
    /// fall outside the universe.
    pub fn new(n: u64, heavy: Vec<(u64, f64)>) -> Self {
        let mass: f64 = heavy.iter().map(|&(_, p)| p).sum();
        assert!(mass < 1.0 + 1e-12, "planted mass must be at most 1");
        assert!(
            heavy.iter().all(|&(_, p)| p > 0.0),
            "probabilities must be positive"
        );
        assert!(heavy.iter().all(|&(i, _)| i < n), "ids must be in universe");
        let mut ids: Vec<u64> = heavy.iter().map(|&(i, _)| i).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), heavy.len(), "planted ids must be distinct");
        assert!(
            (n as usize) > heavy.len(),
            "universe must exceed planted set"
        );
        Self {
            heavy,
            n,
            heavy_mass: mass,
        }
    }

    /// The planted `(item, probability)` pairs.
    pub fn planted(&self) -> &[(u64, f64)] {
        &self.heavy
    }
}

impl ItemSource for PlantedGenerator {
    fn next_item<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let mut u: f64 = rng.gen();
        if u < self.heavy_mass {
            for &(item, p) in &self.heavy {
                if u < p {
                    return item;
                }
                u -= p;
            }
        }
        // Background: uniform over non-planted ids.
        loop {
            let x = rng.gen_range(0..self.n);
            if !self.heavy.iter().any(|&(i, _)| i == x) {
                return x;
            }
        }
    }

    fn universe(&self) -> u64 {
        self.n
    }
}

/// How a fixed multiset of items is laid out along the stream. The paper's
/// guarantees are order-independent; these policies probe that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderPolicy {
    /// Uniformly random permutation of the multiset.
    Shuffled,
    /// All copies of an item appear consecutively (sorted by item id).
    Sorted,
    /// Round-robin across items until counts are exhausted — maximally
    /// interleaved, the hard case for sticky-sampling-style algorithms.
    RoundRobin,
    /// All copies of the heavy items at the *end* — the layout of the
    /// Indexing reduction in Theorem 9, where Bob's items arrive last.
    HeavyLast,
}

/// Builds a concrete stream from `(item, count)` pairs under the given
/// ordering policy.
pub fn arrange<R: Rng + ?Sized>(
    counts: &[(u64, u64)],
    policy: OrderPolicy,
    rng: &mut R,
) -> Vec<u64> {
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    let mut stream = Vec::with_capacity(total as usize);
    match policy {
        OrderPolicy::Shuffled => {
            for &(item, c) in counts {
                stream.extend(std::iter::repeat_n(item, c as usize));
            }
            stream.shuffle(rng);
        }
        OrderPolicy::Sorted => {
            let mut sorted = counts.to_vec();
            sorted.sort_unstable();
            for (item, c) in sorted {
                stream.extend(std::iter::repeat_n(item, c as usize));
            }
        }
        OrderPolicy::RoundRobin => {
            let mut remaining: Vec<(u64, u64)> = counts.to_vec();
            while !remaining.is_empty() {
                remaining.retain_mut(|(item, c)| {
                    stream.push(*item);
                    *c -= 1;
                    *c > 0
                });
            }
        }
        OrderPolicy::HeavyLast => {
            let mut sorted = counts.to_vec();
            sorted.sort_unstable_by_key(|&(_, c)| c); // light first
            for (item, c) in sorted {
                stream.extend(std::iter::repeat_n(item, c as usize));
            }
        }
    }
    stream
}

/// Materializes `len` draws from a source.
pub fn collect_stream<S: ItemSource, R: Rng + ?Sized>(
    source: &mut S,
    len: usize,
    rng: &mut R,
) -> Vec<u64> {
    (0..len).map(|_| source.next_item(rng)).collect()
}

/// Builds the hardest frequency vector for the (ε, φ) decision problem:
/// `heavy` items just **above** the report threshold (`φm + slack`) and
/// `boundary` items at exactly `(φ−ε)m` — the largest frequency an
/// algorithm must refuse. Anything that blurs counts by more than εm
/// will either miss a heavy item or leak a boundary item; used by the
/// false-positive stress tests.
///
/// Returns `(counts, heavy_ids, boundary_ids)`; counts sum to `m` (a
/// filler tail of singletons absorbs the remainder).
///
/// # Panics
/// If the requested items exceed the stream budget.
pub fn threshold_adversary(
    m: u64,
    phi: f64,
    eps: f64,
    heavy: usize,
    boundary: usize,
) -> (Vec<(u64, u64)>, Vec<u64>, Vec<u64>) {
    let above = (phi * m as f64).floor() as u64 + 1 + m / 1000;
    let at = ((phi - eps) * m as f64).floor() as u64;
    let planted = above * heavy as u64 + at * boundary as u64;
    assert!(planted <= m, "adversary does not fit in the stream budget");
    let mut counts = Vec::new();
    let mut heavy_ids = Vec::new();
    let mut boundary_ids = Vec::new();
    for i in 0..heavy as u64 {
        counts.push((i, above));
        heavy_ids.push(i);
    }
    for i in 0..boundary as u64 {
        let id = 1000 + i;
        counts.push((id, at));
        boundary_ids.push(id);
    }
    let mut fill = m - planted;
    let mut id = 1_000_000u64;
    while fill > 0 {
        let c = fill.min(1);
        counts.push((id, c));
        fill -= c;
        id += 1;
    }
    (counts, heavy_ids, boundary_ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_universe() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = UniformGenerator::new(8);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[g.next_item(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn planted_frequencies_match() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = PlantedGenerator::new(1000, vec![(7, 0.3), (99, 0.1)]);
        let n = 100_000;
        let stream = collect_stream(&mut g, n, &mut rng);
        let f7 = stream.iter().filter(|&&x| x == 7).count() as f64 / n as f64;
        let f99 = stream.iter().filter(|&&x| x == 99).count() as f64 / n as f64;
        assert!((f7 - 0.3).abs() < 0.01, "f7 {f7}");
        assert!((f99 - 0.1).abs() < 0.01, "f99 {f99}");
    }

    #[test]
    fn planted_background_avoids_planted_ids() {
        let mut rng = StdRng::seed_from_u64(3);
        // Tiny universe: background must still avoid item 0.
        let mut g = PlantedGenerator::new(3, vec![(0, 0.5)]);
        let stream = collect_stream(&mut g, 5000, &mut rng);
        let f0 = stream.iter().filter(|&&x| x == 0).count() as f64 / 5000.0;
        assert!((f0 - 0.5).abs() < 0.05);
        assert!(stream.iter().all(|&x| x < 3));
    }

    #[test]
    #[should_panic(expected = "planted ids must be distinct")]
    fn duplicate_planted_ids_rejected() {
        PlantedGenerator::new(10, vec![(1, 0.2), (1, 0.2)]);
    }

    #[test]
    fn arrange_preserves_multiset_for_all_policies() {
        let mut rng = StdRng::seed_from_u64(4);
        let counts = [(3u64, 5u64), (9, 2), (1, 7)];
        for policy in [
            OrderPolicy::Shuffled,
            OrderPolicy::Sorted,
            OrderPolicy::RoundRobin,
            OrderPolicy::HeavyLast,
        ] {
            let stream = arrange(&counts, policy, &mut rng);
            assert_eq!(stream.len(), 14, "{policy:?}");
            for &(item, c) in &counts {
                let got = stream.iter().filter(|&&x| x == item).count() as u64;
                assert_eq!(got, c, "{policy:?} item {item}");
            }
        }
    }

    #[test]
    fn round_robin_interleaves() {
        let mut rng = StdRng::seed_from_u64(5);
        let stream = arrange(&[(0, 3), (1, 3)], OrderPolicy::RoundRobin, &mut rng);
        assert_eq!(stream, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn threshold_adversary_counts_are_exact() {
        let m = 100_000u64;
        let (counts, heavy, boundary) = threshold_adversary(m, 0.2, 0.05, 2, 3);
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, m);
        assert_eq!(heavy.len(), 2);
        assert_eq!(boundary.len(), 3);
        for &h in &heavy {
            let c = counts.iter().find(|&&(i, _)| i == h).unwrap().1;
            assert!(c as f64 > 0.2 * m as f64, "heavy item must clear phi*m");
        }
        for &b in &boundary {
            let c = counts.iter().find(|&&(i, _)| i == b).unwrap().1;
            assert_eq!(c, ((0.2 - 0.05) * m as f64).floor() as u64);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn threshold_adversary_rejects_overfull() {
        threshold_adversary(100, 0.5, 0.1, 3, 0);
    }

    #[test]
    fn heavy_last_puts_max_count_at_end() {
        let mut rng = StdRng::seed_from_u64(6);
        let stream = arrange(&[(5, 10), (6, 1)], OrderPolicy::HeavyLast, &mut rng);
        assert_eq!(stream[0], 6);
        assert!(stream[1..].iter().all(|&x| x == 5));
    }
}
