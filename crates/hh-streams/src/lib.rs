//! Workload generators and ground-truth oracles for the evaluation
//! harness.
//!
//! The paper's guarantees are distribution-free ("We do not make any
//! assumption on the ordering of the stream"), so the experiments exercise
//! the algorithms on:
//!
//! * [`ZipfGenerator`] — the skewed distributions that motivate heavy
//!   hitters in practice (iceberg queries, elephant flows),
//! * [`UniformGenerator`] — the no-signal baseline,
//! * [`PlantedGenerator`] — explicit heavy items at chosen frequencies over
//!   a uniform background, the workload used for the guarantee experiments
//!   because its ground truth is designed rather than sampled,
//! * [`arrange`]/[`OrderPolicy`] — adversarial stream *orders* (sorted,
//!   round-robin, bursts) over a fixed frequency vector, probing the
//!   order-independence claim,
//! * [`ExactCounts`] — a hash-map oracle providing exact frequencies, true
//!   heavy-hitter sets, maxima and minima for every experiment's scoring.
//!
//! # Example
//!
//! ```
//! use hh_streams::{ZipfGenerator, ItemSource, ExactCounts, collect_stream};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let mut zipf = ZipfGenerator::new(1 << 20, 1.2).scrambled(&mut rng);
//! let stream = collect_stream(&mut zipf, 20_000, &mut rng);
//! let oracle = ExactCounts::from_stream(&stream);
//! // The rank-1 item dominates a skewed stream.
//! assert!(oracle.max().unwrap().1 > 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cidr;
pub mod generators;
pub mod oracle;
pub mod zipf;

pub use cidr::CidrZipf;
pub use generators::{
    arrange, collect_stream, threshold_adversary, OrderPolicy, PlantedGenerator, UniformGenerator,
};
pub use oracle::ExactCounts;
pub use zipf::ZipfGenerator;

use rand::Rng;

/// An infinite item source; the workload side of every experiment.
pub trait ItemSource {
    /// Draws the next stream item.
    fn next_item<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64;

    /// Universe size `n` this source draws from (items are in `[0, n)`).
    fn universe(&self) -> u64;
}
