//! Theorem 9: `Indexing → (ε, φ)-heavy hitters`, giving the
//! `Ω(ε⁻¹ log φ⁻¹)` term.
//!
//! Alice holds `x ∈ [A]^t` with `A ≈ 1/(2(φ−ε))`, `t ≈ 1/(2ε)`. She
//! streams `εm` copies of the pair `(x_j, j)` for every `j`; Bob appends
//! `(φ−ε)m` copies of `(a, i)` for every `a ∈ [A]`. Now `(x_i, i)` has
//! frequency exactly `φm` while every other pair has `(φ−ε)m` or `εm` —
//! so a correct heavy-hitters report contains `(x_i, i)` and no other
//! pair ending in `i`, letting Bob read off `x_i`.

use crate::problems::IndexingInstance;
use crate::protocol::ReductionOutcome;
use hh_core::{HeavyHitters, HhParams, SimpleListHh, StreamSummary};
use hh_space::SpaceUsage;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Pair encoding: `(a, j) ↦ a·t + j` over universe `[A·t]`.
fn encode(a: u64, j: u64, t: u64) -> u64 {
    a * t + j
}

/// Executes the Theorem-9 protocol once.
///
/// `copies_alice` is `εm` (per `(x_j, j)` pair) and `copies_bob` is
/// `(φ−ε)m` (per `(a, i)` pair); the effective `ε, φ` follow from them.
pub fn run(
    instance: &IndexingInstance,
    copies_alice: u64,
    copies_bob: u64,
    seed: u64,
) -> ReductionOutcome {
    let t = instance.t() as u64;
    let a_size = instance.alphabet;
    let m = copies_alice * t + copies_bob * a_size;
    let eps_eff = copies_alice as f64 / m as f64;
    let phi_eff = (copies_alice + copies_bob) as f64 / m as f64;
    let params =
        HhParams::with_delta(0.9 * eps_eff, phi_eff, 0.1).expect("copies must give 0 < 0.9ε < φ");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut algo = SimpleListHh::new(params, a_size * t, m, seed ^ 0x7E09).expect("valid params");

    // Alice's half: εm copies of (x_j, j) for every j, shuffled.
    let mut alice: Vec<u64> = Vec::with_capacity((copies_alice * t) as usize);
    for (j, &xj) in instance.x.iter().enumerate() {
        alice.extend(std::iter::repeat_n(
            encode(xj, j as u64, t),
            copies_alice as usize,
        ));
    }
    alice.shuffle(&mut rng);
    algo.insert_all(&alice);

    // --- the one-way message: the algorithm's state ---
    let message_bits = algo.model_bits();

    // Bob's half: (φ−ε)m copies of (a, i) for every a, shuffled.
    let i = instance.i as u64;
    let mut bob: Vec<u64> = Vec::with_capacity((copies_bob * a_size) as usize);
    for a in 0..a_size {
        bob.extend(std::iter::repeat_n(encode(a, i, t), copies_bob as usize));
    }
    bob.shuffle(&mut rng);
    algo.insert_all(&bob);

    // Decode: among reported pairs ending in i, the heaviest names x_i.
    let report = algo.report();
    let decoded = report
        .entries()
        .iter()
        .filter(|e| e.item % t == i)
        .max_by(|a, b| a.count.total_cmp(&b.count))
        .map(|e| e.item / t);

    ReductionOutcome {
        message_bits,
        lower_bound_units: instance.lower_bound_units(),
        success: decoded == Some(instance.answer()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::success_rate;

    #[test]
    fn decodes_random_instances_reliably() {
        let rate = success_rate(30, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = IndexingInstance::random(8, 32, &mut rng);
            run(&inst, 600, 1200, seed)
        });
        assert!(rate >= 0.9, "success rate {rate}");
    }

    #[test]
    fn message_respects_lower_bound_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = IndexingInstance::random(8, 32, &mut rng);
        let out = run(&inst, 600, 1200, 2);
        // Upper bound must sit above the proven floor (ratio ≥ 1 up to
        // the constant the algorithm pays).
        assert!(
            out.message_bits as f64 >= out.lower_bound_units,
            "message {} below floor {}",
            out.message_bits,
            out.lower_bound_units
        );
    }

    #[test]
    fn larger_alphabet_means_larger_floor() {
        let mut rng = StdRng::seed_from_u64(3);
        let small = IndexingInstance::random(4, 32, &mut rng);
        let large = IndexingInstance::random(16, 32, &mut rng);
        assert!(large.lower_bound_units() > small.lower_bound_units());
    }

    #[test]
    fn message_grows_with_one_over_eps() {
        // The Ω(ε⁻¹ log φ⁻¹) *shape*, exercised: quadrupling t = 1/(2ε)
        // quadruples the floor, and the algorithm's message must scale
        // along (it cannot stay flat, or it would beat Indexing).
        let mut msg_bits = Vec::new();
        let mut floors = Vec::new();
        for (i, t) in [16usize, 64].into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(40 + i as u64);
            let inst = IndexingInstance::random(8, t, &mut rng);
            let out = run(&inst, 400, 800, 41 + i as u64);
            assert!(out.success, "t={t} decode failed");
            msg_bits.push(out.message_bits as f64);
            floors.push(out.lower_bound_units);
        }
        assert!((floors[1] / floors[0] - 4.0).abs() < 1e-9);
        assert!(
            msg_bits[1] > 1.5 * msg_bits[0],
            "message failed to scale with 1/eps: {msg_bits:?}"
        );
        assert!(
            msg_bits[0] >= floors[0] && msg_bits[1] >= floors[1],
            "message below floor"
        );
    }
}
