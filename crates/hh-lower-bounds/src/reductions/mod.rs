//! The six reductions of §4.2, executable with the real algorithms.

pub mod borda_perm;
pub mod greater_than;
pub mod hh_indexing;
pub mod max_indexing;
pub mod maximin_distance;
pub mod min_indexing;
