//! Theorem 14: `Greater-Than → (ε, φ)-heavy hitters` over a two-item
//! universe, giving the `Ω(log log m)` term.
//!
//! Alice streams `2^x` copies of item 1; Bob appends `2^y` copies of
//! item 0. Whoever holds the larger exponent owns at least a 2/3
//! fraction of the stream, so for `ε < 1/4` the unique reported heavy
//! hitter names the comparison outcome. The stream length `2^x + 2^y` is
//! unknown to both players — this is precisely the regime of the
//! unknown-length wrapper, whose Morris counter is the `Θ(log log m)`
//! state the bound charges.

use crate::problems::GreaterThanInstance;
use crate::protocol::ReductionOutcome;
use hh_core::{HeavyHitters, HhParams, StreamSummary, UnknownLengthHh};
use hh_space::SpaceUsage;

/// Executes the Theorem-14 protocol once. Exponents are capped at 24 to
/// keep run time bounded (2^24 + 2^24 items worst case).
pub fn run(instance: &GreaterThanInstance, max_exponent: u32, seed: u64) -> ReductionOutcome {
    assert!(max_exponent <= 24, "exponent cap for runtime");
    assert!(instance.x <= max_exponent && instance.y <= max_exponent);
    // φ = 0.6, ε = 0.15: winner frequency ≥ 2/3 > φ, loser ≤ 1/3 <
    // (φ − ε).
    let params = HhParams::with_delta(0.15, 0.6, 0.1).expect("fixed parameters");
    let mut algo = UnknownLengthHh::new(params, 2, seed ^ 0x7E14).expect("valid parameters");

    for _ in 0..(1u64 << instance.x) {
        algo.insert(1);
    }

    let message_bits = algo.model_bits();

    for _ in 0..(1u64 << instance.y) {
        algo.insert(0);
    }

    let report = algo.report();
    let decoded = match (report.contains(1), report.contains(0)) {
        (true, false) => Some(true),
        (false, true) => Some(false),
        _ => None,
    };

    ReductionOutcome {
        message_bits,
        lower_bound_units: instance.lower_bound_units(max_exponent),
        success: decoded == Some(instance.answer()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::success_rate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decodes_random_instances_reliably() {
        let rate = success_rate(20, |seed| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xEE);
            let inst = GreaterThanInstance::random(14, &mut rng);
            run(&inst, 14, seed)
        });
        assert!(rate >= 0.9, "success rate {rate}");
    }

    #[test]
    fn near_exponents_still_decode() {
        // x = y ± 1 is the hardest case (frequencies 2/3 vs 1/3).
        let a = GreaterThanInstance { x: 12, y: 11 };
        let b = GreaterThanInstance { x: 11, y: 12 };
        assert!(run(&a, 14, 1).success);
        assert!(run(&b, 14, 2).success);
    }

    #[test]
    fn message_grows_like_loglog_not_log() {
        // Quadrupling the exponent (16x the length) should move the
        // message by only O(1) bits in the position-tracking share; the
        // whole-message growth must stay far below the 2-bit-per-doubling
        // an exact counter would add to a log-m term.
        let small = run(&GreaterThanInstance { x: 6, y: 5 }, 24, 3);
        let large = run(&GreaterThanInstance { x: 18, y: 5 }, 24, 4);
        let growth = large.message_bits as f64 / small.message_bits as f64;
        assert!(
            growth < 2.0,
            "message grew {growth}x for a 4096x longer prefix"
        );
    }
}
