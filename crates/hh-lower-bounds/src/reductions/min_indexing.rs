//! Theorem 11: `Indexing → ε-Minimum`, giving the `Ω(ε⁻¹)` term.
//!
//! Alice holds `x ∈ {0,1}^T` with `T = 5/ε`. Universe `[T+1]`: item
//! `j < T` encodes bit `j`, item `T` is a sentinel. Alice inserts two
//! copies of every `j` with `x_j = 1`; Bob inserts two copies of every
//! `j ∈ [T] \ {i}` and a *single* copy of the sentinel. Final
//! frequencies: `f_j ∈ {2, 4}` for `j ≠ i`, `f_i = 2x_i`,
//! `f_sentinel = 1`. If `x_i = 0` the unique minimum is `i` (frequency
//! 0); if `x_i = 1` it is the sentinel — so the reported ε-minimum item
//! decodes `x_i`.

use crate::problems::IndexingInstance;
use crate::protocol::ReductionOutcome;
use hh_core::{EpsMinimum, StreamSummary};
use hh_space::SpaceUsage;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Executes the Theorem-11 protocol once. The instance must be binary
/// (`alphabet == 2`).
pub fn run(instance: &IndexingInstance, seed: u64) -> ReductionOutcome {
    assert_eq!(instance.alphabet, 2, "Theorem 11 uses a binary string");
    let t = instance.t() as u64;
    let universe = t + 1;
    let sentinel = t;
    let support = instance.x.iter().filter(|&&b| b == 1).count() as u64;
    let m = 2 * support + 2 * (t - 1) + 1;

    // Distinguishing frequencies 0/1/2 needs additive error < 1: run the
    // algorithm well below 1/m. Small universe keeps it in tracked mode.
    let eps_algo = (0.4 / m as f64).min(1.0 / (2.0 * universe as f64));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut algo =
        EpsMinimum::new(eps_algo, 0.2, universe, m, seed ^ 0x7E11).expect("valid parameters");
    assert!(!algo.is_random_mode(), "universe must be tracked");

    let mut alice: Vec<u64> = Vec::new();
    for (j, &bit) in instance.x.iter().enumerate() {
        if bit == 1 {
            alice.push(j as u64);
            alice.push(j as u64);
        }
    }
    alice.shuffle(&mut rng);
    algo.insert_all(&alice);

    let message_bits = algo.model_bits();

    let i = instance.i as u64;
    let mut bob: Vec<u64> = Vec::new();
    for j in 0..t {
        if j != i {
            bob.push(j);
            bob.push(j);
        }
    }
    bob.push(sentinel);
    bob.shuffle(&mut rng);
    algo.insert_all(&bob);

    let reported = algo.min_estimate().item;
    let decoded = if reported == i {
        Some(0u64)
    } else if reported == sentinel {
        Some(1u64)
    } else {
        None
    };

    ReductionOutcome {
        message_bits,
        lower_bound_units: t as f64, // Ω(t) bits for binary Indexing
        success: decoded == Some(instance.answer()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::success_rate;

    #[test]
    fn decodes_random_instances_reliably() {
        let rate = success_rate(40, |seed| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBB);
            let inst = IndexingInstance::random(2, 25, &mut rng);
            run(&inst, seed)
        });
        assert!(rate >= 0.9, "success rate {rate}");
    }

    #[test]
    fn both_bit_values_decode() {
        // Force x_i = 0 and x_i = 1 explicitly.
        let zero = IndexingInstance {
            alphabet: 2,
            x: vec![1, 0, 1, 1, 0, 1, 1, 1],
            i: 1,
        };
        let one = IndexingInstance {
            alphabet: 2,
            x: vec![1, 0, 1, 1, 0, 1, 1, 1],
            i: 0,
        };
        assert!(run(&zero, 1).success, "x_i = 0 case");
        assert!(run(&one, 2).success, "x_i = 1 case");
    }

    #[test]
    fn message_exceeds_floor() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = IndexingInstance::random(2, 25, &mut rng);
        let out = run(&inst, 6);
        assert!(out.message_bits as f64 >= out.lower_bound_units);
    }
}
