//! Theorem 10: `Indexing → ε-Maximum`, giving the `Ω(ε⁻¹ log ε⁻¹)` term.
//!
//! Alphabet and index range are both `1/ε`. Alice streams `εm/2` copies
//! of `(x_j, j)` per `j`; Bob appends `εm/2` copies of `(a, i)` per `a`.
//! The pair `(x_i, i)` reaches `εm` while everything else stays at
//! `εm/2`, so an `ε/5`-Maximum witness must be `(x_i, i)`.

use crate::problems::IndexingInstance;
use crate::protocol::ReductionOutcome;
use hh_core::{EpsMaximum, StreamSummary};
use hh_space::SpaceUsage;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Executes the Theorem-10 protocol once; `copies` is `εm/2`.
pub fn run(instance: &IndexingInstance, copies: u64, seed: u64) -> ReductionOutcome {
    let t = instance.t() as u64;
    assert_eq!(
        instance.alphabet, t,
        "Theorem 10 uses alphabet = index range = 1/eps"
    );
    let m = 2 * copies * t;
    // Gap between max (2·copies) and runner-up (copies) is εm/2; run the
    // algorithm at ε/5 so its additive error cannot bridge the gap.
    let eps_algo = 1.0 / (5.0 * t as f64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut algo =
        EpsMaximum::new(eps_algo, 0.1, t * t, m, seed ^ 0x7E10).expect("valid parameters");

    let mut alice: Vec<u64> = Vec::with_capacity((copies * t) as usize);
    for (j, &xj) in instance.x.iter().enumerate() {
        alice.extend(std::iter::repeat_n(xj * t + j as u64, copies as usize));
    }
    alice.shuffle(&mut rng);
    algo.insert_all(&alice);

    let message_bits = algo.model_bits();

    let i = instance.i as u64;
    let mut bob: Vec<u64> = Vec::with_capacity((copies * t) as usize);
    for a in 0..t {
        bob.extend(std::iter::repeat_n(a * t + i, copies as usize));
    }
    bob.shuffle(&mut rng);
    algo.insert_all(&bob);

    let decoded = algo
        .max_estimate()
        .filter(|e| e.item % t == i)
        .map(|e| e.item / t);

    ReductionOutcome {
        message_bits,
        lower_bound_units: instance.lower_bound_units(),
        success: decoded == Some(instance.answer()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::success_rate;

    #[test]
    fn decodes_random_instances_reliably() {
        let rate = success_rate(30, |seed| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xAA);
            let inst = IndexingInstance::random(16, 16, &mut rng);
            run(&inst, 500, seed)
        });
        assert!(rate >= 0.9, "success rate {rate}");
    }

    #[test]
    fn floor_is_t_log_t() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = IndexingInstance::random(16, 16, &mut rng);
        assert_eq!(inst.lower_bound_units(), 16.0 * 4.0);
        let out = run(&inst, 400, 2);
        assert!(out.message_bits as f64 >= out.lower_bound_units);
    }

    #[test]
    #[should_panic(expected = "alphabet = index range")]
    fn mismatched_instance_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = IndexingInstance::random(8, 16, &mut rng);
        run(&inst, 100, 3);
    }
}
