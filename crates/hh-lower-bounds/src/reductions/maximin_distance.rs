//! Theorem 13: `Indexing → ε-Maximin` via Hamming-distance matrices,
//! giving the `Ω(n ε⁻²)` term.
//!
//! With `γ = 1/ε²`, Alice encodes bits as pairwise Hamming distances of
//! matrix rows (Lemma 8, from \[VWWZ15\]): row distances `γ/2 + √γ` encode
//! 1 and `γ/2 − √γ` encode 0. Rows become candidates, columns become
//! votes (a vote ranks the candidates whose bit is 1 above the rest; the
//! complement rows make every column balanced). Bob appends votes with
//! candidate 0 first and his queried row `j` second, which pins `j`'s
//! maximin score to `|{columns: P_j = 1, P_0 = 0}| = (Δ(P_0,P_j) +
//! |P_j| − |P_0|)/2` — so a `√γ/4`-accurate maximin estimate recovers Δ
//! and hence the bit.
//!
//! **Substitution (documented in DESIGN.md):** the paper's Lemma 8
//! encodes `(n−γ)·γ` bits by prescribing the distances between *all*
//! pairs simultaneously with public randomness; we encode one bit per row
//! (distance to row 0, exact by construction), which keeps the protocol
//! honestly one-way and exercises the identical decoding mechanism, at an
//! `Ω(n)`-bit (rather than `Ω(nγ)`) floor per instance; the `γ` factor
//! reappears because resolving `±√γ` deviations forces `ε = 1/√γ`
//! maximin accuracy, which is what the experiment measures.

use crate::protocol::{AuxPayload, ReductionOutcome};
use hh_space::SpaceUsage;
use hh_votes::{Ranking, StreamingMaximin, VoteSummary};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An instance of the distance-matrix encoding: `bits[j]` is carried by
/// the Hamming distance between rows `0` and `j+1`.
#[derive(Debug, Clone)]
pub struct DistanceInstance {
    /// Column count `γ = 1/ε²`; must be a perfect square ≥ 4.
    pub gamma: usize,
    /// The encoded bits (one per non-reference row).
    pub bits: Vec<u8>,
    /// Bob's queried bit index.
    pub query: usize,
}

impl DistanceInstance {
    /// Random instance with `rows` encoded bits over `gamma` columns.
    pub fn random<R: Rng + ?Sized>(gamma: usize, rows: usize, rng: &mut R) -> Self {
        let root = (gamma as f64).sqrt() as usize;
        assert!(root * root == gamma && root >= 2, "gamma must be a square");
        assert!(rows >= 1);
        Self {
            gamma,
            bits: (0..rows).map(|_| rng.gen_range(0..2u8)).collect(),
            query: rng.gen_range(0..rows),
        }
    }

    /// The answer Bob must produce.
    pub fn answer(&self) -> u8 {
        self.bits[self.query]
    }
}

/// Builds the matrix `P`: row 0 random; row `j+1` differs from row 0 in
/// exactly `γ/2 + √γ` (bit 1) or `γ/2 − √γ` (bit 0) positions.
fn build_matrix<R: Rng + ?Sized>(inst: &DistanceInstance, rng: &mut R) -> Vec<Vec<bool>> {
    let gamma = inst.gamma;
    let root = (gamma as f64).sqrt() as usize;
    let base: Vec<bool> = (0..gamma).map(|_| rng.gen()).collect();
    let mut rows = vec![base.clone()];
    for &bit in &inst.bits {
        let flips = if bit == 1 {
            gamma / 2 + root
        } else {
            gamma / 2 - root
        };
        let mut positions: Vec<usize> = (0..gamma).collect();
        positions.shuffle(rng);
        let mut row = base.clone();
        for &v in positions.iter().take(flips) {
            row[v] = !row[v];
        }
        rows.push(row);
    }
    rows
}

/// Executes the Theorem-13 protocol once. `copies` replicates each vote
/// to exercise the sampling path (the distances scale with it).
pub fn run(instance: &DistanceInstance, copies: u64, seed: u64) -> ReductionOutcome {
    let gamma = instance.gamma;
    let root = (gamma as f64).sqrt() as usize;
    let rows = instance.bits.len() + 1;
    let candidates = 2 * rows; // rows plus complements (balanced columns)
    let m = 2 * gamma as u64 * copies;

    let mut rng = StdRng::seed_from_u64(seed);
    let p = build_matrix(instance, &mut rng);

    // Maximin accuracy must resolve ±√γ·copies: ε_algo·m < copies·√γ/2
    // ⇒ ε_algo < √γ/(4γ); take half that.
    let eps_algo = (root as f64) / (8.0 * gamma as f64);
    let mut algo = StreamingMaximin::new(candidates, eps_algo, 0.5, 0.1, m, seed ^ 0x7E13)
        .expect("valid parameters");

    // Alice: one vote per column v — candidates whose P' bit is 1 (row c
    // for P, row c+rows for the complement) ranked above the rest.
    for v in 0..gamma {
        let mut top: Vec<u32> = Vec::with_capacity(rows);
        let mut bottom: Vec<u32> = Vec::with_capacity(rows);
        for (c, row) in p.iter().enumerate() {
            if row[v] {
                top.push(c as u32);
                bottom.push((c + rows) as u32);
            } else {
                bottom.push(c as u32);
                top.push((c + rows) as u32);
            }
        }
        top.extend(bottom);
        let vote = Ranking::new(top).expect("valid column vote");
        for _ in 0..copies {
            algo.insert_vote(&vote);
        }
    }

    // The message: algorithm state + the row Hamming weights.
    let weights: Vec<u64> = p
        .iter()
        .map(|row| row.iter().filter(|&&b| b).count() as u64)
        .collect();
    let aux = AuxPayload::from_u64s(&weights);
    let message_bits = algo.model_bits() + aux.bits();

    // Bob: candidate 0 first, queried row second, rest ascending.
    let j = (instance.query + 1) as u32;
    let mut order = vec![0u32, j];
    order.extend((1..candidates as u32).filter(|&c| c != j));
    let bob_vote = Ranking::new(order).expect("valid Bob vote");
    for _ in 0..(gamma as u64 * copies) {
        algo.insert_vote(&bob_vote);
    }

    // Decode: maximin(j) = copies·|{v : P_j(v)=1, P_0(v)=0}|
    //       = copies·(Δ + |P_j| − |P_0|)/2.
    let w = aux.to_u64s();
    let est = algo.score_estimates()[j as usize];
    let delta_hat = 2.0 * est / copies as f64 - w[instance.query + 1] as f64 + w[0] as f64;
    let decoded = u8::from(delta_hat > gamma as f64 / 2.0);

    ReductionOutcome {
        message_bits,
        // One exactly-placed distance per row: Ω(rows) bits; the γ factor
        // enters through the forced ε = 1/√γ (see module docs).
        lower_bound_units: instance.bits.len() as f64,
        success: decoded == instance.answer(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::success_rate;

    #[test]
    fn matrix_distances_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = DistanceInstance::random(64, 6, &mut rng);
        let p = build_matrix(&inst, &mut rng);
        for (jm1, &bit) in inst.bits.iter().enumerate() {
            let d: usize = p[0].iter().zip(&p[jm1 + 1]).filter(|(a, b)| a != b).count();
            let expect = if bit == 1 { 32 + 8 } else { 32 - 8 };
            assert_eq!(d, expect, "row {}", jm1 + 1);
        }
    }

    #[test]
    fn decodes_random_instances() {
        let rate = success_rate(20, |seed| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDD);
            let inst = DistanceInstance::random(64, 7, &mut rng);
            run(&inst, 3, seed)
        });
        assert!(rate >= 0.95, "success rate {rate}");
    }

    #[test]
    fn message_scales_with_gamma() {
        let mut rng = StdRng::seed_from_u64(3);
        let small = DistanceInstance::random(16, 5, &mut rng);
        let large = DistanceInstance::random(144, 5, &mut rng);
        let out_small = run(&small, 2, 4);
        let out_large = run(&large, 2, 5);
        // The stored-votes message grows with γ = 1/ε² — the Ω(nε⁻²)
        // phenomenon.
        assert!(out_large.message_bits > 4 * out_small.message_bits);
    }
}
