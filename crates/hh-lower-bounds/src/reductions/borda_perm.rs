//! Theorem 12: `ε-Perm → ε-Borda`, giving the `Ω(n log ε⁻¹)` term.
//!
//! Alice's permutation σ over `[n]` is cut into `1/ε` blocks. She builds
//! **one** vote `v` over `N = 3n` candidates (the `n` σ-items plus `2n`
//! dummies): block `B_j` lays out `εn` dummies, the `j`-th block of σ,
//! and `εn` more dummies — so an item's position inside `v` (hence its
//! Borda contribution `N−1−pos`) pins down its block, with a `2εn`-wide
//! guard band of dummies between consecutive blocks. Bob adds four votes
//! ranking his item `i` first (two with the rest ascending, two
//! descending, which cancels for every other candidate), making `i`'s
//! total Borda score `4(N−1) + v`-contribution. An `εmn`-accurate Borda
//! estimate of `i` therefore reveals `i`'s block in σ.

use crate::problems::EpsPermInstance;
use crate::protocol::ReductionOutcome;
use hh_space::SpaceUsage;
use hh_votes::{Ranking, StreamingBorda, VoteSummary};

/// Builds Alice's vote `v` from the ε-Perm instance. Candidates `0..n`
/// are σ-items; `n..3n` are dummies.
fn alice_vote(instance: &EpsPermInstance) -> Ranking {
    let n = instance.n();
    let blocks = instance.blocks;
    let eps_n = instance.block_size();
    let mut order: Vec<u32> = Vec::with_capacity(3 * n);
    let mut dummy = n as u32;
    for j in 0..blocks {
        for _ in 0..eps_n {
            order.push(dummy);
            dummy += 1;
        }
        for pos in (j * eps_n)..((j + 1) * eps_n) {
            order.push(instance.sigma[pos]);
        }
        for _ in 0..eps_n {
            order.push(dummy);
            dummy += 1;
        }
    }
    Ranking::new(order).expect("constructed vote is a permutation")
}

/// Executes the Theorem-12 protocol once.
pub fn run(instance: &EpsPermInstance, seed: u64) -> ReductionOutcome {
    let n = instance.n();
    let big_n = 3 * n;
    let eps_n = instance.block_size();
    let m = 5u64;

    // Decode needs Borda error below εn (half the 2εn dummy guard band):
    // ε_algo·m·N = 15·ε_algo·n < εn ⇒ ε_algo < ε/15; take ε/20.
    let eps_algo = 1.0 / (20.0 * instance.blocks as f64);
    let mut algo =
        StreamingBorda::new(big_n, eps_algo, 0.5, 0.1, m, seed ^ 0x7E12).expect("valid parameters");

    algo.insert_vote(&alice_vote(instance));

    let message_bits = algo.model_bits();

    // Bob: i first, then the rest ascending (×2) and descending (×2).
    let i = instance.query;
    let mut rest: Vec<u32> = (0..big_n as u32).filter(|&c| c != i).collect();
    let mut fwd = vec![i];
    fwd.extend(rest.iter().copied());
    rest.reverse();
    let mut rev = vec![i];
    rev.extend(rest.iter().copied());
    let fwd = Ranking::new(fwd).expect("forward vote");
    let rev = Ranking::new(rev).expect("reverse vote");
    for _ in 0..2 {
        algo.insert_vote(&fwd);
        algo.insert_vote(&rev);
    }

    // Decode: v-contribution = total − 4(N−1); position = N−1−contrib;
    // block = position / 3εn (σ items sit in the middle third).
    let est = algo.score_estimates()[i as usize];
    let v_contrib = (est - 4.0 * (big_n as f64 - 1.0)).round();
    let pos = (big_n as f64 - 1.0) - v_contrib;
    let decoded = if pos >= 0.0 {
        Some((pos as usize) / (3 * eps_n))
    } else {
        None
    };

    ReductionOutcome {
        message_bits,
        lower_bound_units: instance.lower_bound_units(),
        success: decoded == Some(instance.block_of(instance.query)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::success_rate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alice_vote_is_valid_and_block_structured() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = EpsPermInstance::random(16, 4, &mut rng);
        let v = alice_vote(&inst);
        assert_eq!(v.len(), 48);
        // σ items of block j occupy vote positions j·12+4 .. j·12+8.
        for j in 0..4usize {
            for off in 0..4usize {
                let c = v.at(j * 12 + 4 + off);
                assert!((c as usize) < 16, "middle third holds sigma items");
                assert_eq!(inst.block_of(c), j);
            }
        }
    }

    #[test]
    fn decodes_every_block_deterministically() {
        // m = 5 votes means sampling probability 1: exact scores, so the
        // decode must always succeed.
        let rate = success_rate(25, |seed| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xCC);
            let inst = EpsPermInstance::random(32, 8, &mut rng);
            run(&inst, seed)
        });
        assert_eq!(rate, 1.0, "exact decode expected");
    }

    #[test]
    fn floor_is_n_log_blocks() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = EpsPermInstance::random(32, 8, &mut rng);
        assert_eq!(inst.lower_bound_units(), 32.0 * 3.0);
        let out = run(&inst, 3);
        assert!(out.message_bits as f64 >= out.lower_bound_units);
    }
}
