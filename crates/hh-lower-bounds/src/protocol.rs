//! The one-way protocol abstraction shared by every reduction.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Result of executing one reduction end to end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReductionOutcome {
    /// Bits of the message Alice sent: the streaming algorithm's model
    /// state plus any auxiliary payload (e.g. the Hamming weights in
    /// Theorem 13).
    pub message_bits: u64,
    /// The communication-complexity shape of the source problem,
    /// evaluated with constant 1 (e.g. `t·log₂(alphabet)` for Indexing).
    /// A sound reduction requires `message_bits = Ω(lower_bound_units)`;
    /// the E8 harness plots the ratio.
    pub lower_bound_units: f64,
    /// Whether Bob decoded his answer correctly in this run (the paper's
    /// protocols succeed with probability 1 − δ, not always).
    pub success: bool,
}

impl ReductionOutcome {
    /// Ratio `message_bits / lower_bound_units` — the constant the
    /// algorithm "pays" relative to the proven floor (must be bounded
    /// below across sweeps for the reduction to be meaningful).
    pub fn ratio(&self) -> f64 {
        self.message_bits as f64 / self.lower_bound_units.max(1.0)
    }
}

/// The auxiliary payload Alice attaches beside the algorithm state.
/// Counted toward `message_bits` at 8 bits per byte.
#[derive(Debug, Clone, Default)]
pub struct AuxPayload {
    data: Bytes,
}

impl AuxPayload {
    /// Empty payload.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Payload of little-endian `u64`s (e.g. Hamming weights).
    pub fn from_u64s(values: &[u64]) -> Self {
        let mut buf = Vec::with_capacity(values.len() * 8);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Self {
            data: Bytes::from(buf),
        }
    }

    /// Decodes the payload back into `u64`s.
    pub fn to_u64s(&self) -> Vec<u64> {
        self.data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }

    /// Payload length in bits.
    pub fn bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }
}

/// Runs a reduction over `trials` seeds and returns the empirical success
/// rate (Bob decoding correctly).
pub fn success_rate<F>(trials: u64, mut run: F) -> f64
where
    F: FnMut(u64) -> ReductionOutcome,
{
    let ok = (0..trials).filter(|&s| run(s).success).count();
    ok as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aux_payload_roundtrip() {
        let p = AuxPayload::from_u64s(&[1, 2, u64::MAX]);
        assert_eq!(p.to_u64s(), vec![1, 2, u64::MAX]);
        assert_eq!(p.bits(), 3 * 64);
        assert_eq!(AuxPayload::empty().bits(), 0);
    }

    #[test]
    fn ratio_guards_division() {
        let o = ReductionOutcome {
            message_bits: 100,
            lower_bound_units: 0.0,
            success: true,
        };
        assert_eq!(o.ratio(), 100.0);
    }

    #[test]
    fn success_rate_counts() {
        let rate = success_rate(10, |s| ReductionOutcome {
            message_bits: 1,
            lower_bound_units: 1.0,
            success: s % 2 == 0,
        });
        assert_eq!(rate, 0.5);
    }
}
