//! The communication problems of §4.1, as concrete instances.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// `Indexing_{m,t}` (Definition 10): Alice holds `x ∈ [alphabet]^t`, Bob
/// holds `i ∈ [t]` and must output `x_i`. One-way complexity
/// `Ω(t·log alphabet)` (Lemma 5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexingInstance {
    /// Alphabet size (the `m` of Definition 10).
    pub alphabet: u64,
    /// Alice's string.
    pub x: Vec<u64>,
    /// Bob's index into `x`.
    pub i: usize,
}

impl IndexingInstance {
    /// A uniformly random instance with `t` symbols from `[alphabet]`.
    pub fn random<R: Rng + ?Sized>(alphabet: u64, t: usize, rng: &mut R) -> Self {
        assert!(alphabet >= 1 && t >= 1);
        Self {
            alphabet,
            x: (0..t).map(|_| rng.gen_range(0..alphabet)).collect(),
            i: rng.gen_range(0..t),
        }
    }

    /// String length `t`.
    pub fn t(&self) -> usize {
        self.x.len()
    }

    /// The answer Bob must produce.
    pub fn answer(&self) -> u64 {
        self.x[self.i]
    }

    /// `R^{1-way}(Indexing) = Ω(t log alphabet)` in bound units.
    pub fn lower_bound_units(&self) -> f64 {
        self.t() as f64 * (self.alphabet as f64).log2().max(1.0)
    }
}

/// `ε-Perm` (Definition 11): Alice holds a permutation of `[n]` cut into
/// `1/ε` contiguous blocks; Bob holds an item and must name its block.
/// One-way complexity `Ω(n log(1/ε))` (Lemma 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpsPermInstance {
    /// The permutation σ (`σ[pos]` = item at position pos).
    pub sigma: Vec<u32>,
    /// Number of blocks `1/ε`.
    pub blocks: usize,
    /// Bob's item.
    pub query: u32,
}

impl EpsPermInstance {
    /// A random instance over `n` items with `blocks` equal blocks.
    ///
    /// # Panics
    /// If `blocks` does not divide `n`.
    pub fn random<R: Rng + ?Sized>(n: usize, blocks: usize, rng: &mut R) -> Self {
        assert!(blocks >= 1 && n % blocks == 0, "blocks must divide n");
        use rand::seq::SliceRandom;
        let mut sigma: Vec<u32> = (0..n as u32).collect();
        sigma.shuffle(rng);
        Self {
            sigma,
            blocks,
            query: rng.gen_range(0..n as u32),
        }
    }

    /// Number of items `n`.
    pub fn n(&self) -> usize {
        self.sigma.len()
    }

    /// Items per block (`εn`).
    pub fn block_size(&self) -> usize {
        self.n() / self.blocks
    }

    /// Position of `item` in σ.
    pub fn position_of(&self, item: u32) -> usize {
        self.sigma
            .iter()
            .position(|&c| c == item)
            .expect("item in permutation")
    }

    /// The 0-indexed block containing `item` — Bob's required answer for
    /// `query`.
    pub fn block_of(&self, item: u32) -> usize {
        self.position_of(item) / self.block_size()
    }

    /// `R^{1-way}(ε-Perm) = Ω(n log(1/ε))` in bound units.
    pub fn lower_bound_units(&self) -> f64 {
        self.n() as f64 * (self.blocks as f64).log2().max(1.0)
    }
}

/// `Greater-Than_n` (Definition 12): Alice holds `x`, Bob holds `y ≠ x`,
/// Bob outputs `[x > y]`. One-way complexity `Ω(log n)` (Lemma 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreaterThanInstance {
    /// Alice's number.
    pub x: u32,
    /// Bob's number (distinct from `x`).
    pub y: u32,
}

impl GreaterThanInstance {
    /// A random instance with `x, y ∈ [1, max]`, `x ≠ y`.
    pub fn random<R: Rng + ?Sized>(max: u32, rng: &mut R) -> Self {
        assert!(max >= 2);
        let x = rng.gen_range(1..=max);
        let mut y = rng.gen_range(1..=max);
        while y == x {
            y = rng.gen_range(1..=max);
        }
        Self { x, y }
    }

    /// The answer Bob must produce.
    pub fn answer(&self) -> bool {
        self.x > self.y
    }

    /// `R^{1-way}(GT) = Ω(log n)`; through the Theorem 14 reduction the
    /// stream length is `2^x + 2^y`, so this is the `Ω(log log m)` term.
    pub fn lower_bound_units(&self, max: u32) -> f64 {
        (max as f64).log2().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn indexing_instance_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = IndexingInstance::random(8, 16, &mut rng);
        assert_eq!(inst.t(), 16);
        assert!(inst.x.iter().all(|&s| s < 8));
        assert!(inst.i < 16);
        assert_eq!(inst.answer(), inst.x[inst.i]);
        assert_eq!(inst.lower_bound_units(), 16.0 * 3.0);
    }

    #[test]
    fn perm_blocks_partition() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = EpsPermInstance::random(24, 4, &mut rng);
        assert_eq!(inst.block_size(), 6);
        // Every item lands in exactly one block index < 4.
        for item in 0..24u32 {
            assert!(inst.block_of(item) < 4);
        }
        // Position lookup is consistent.
        let q = inst.query;
        assert_eq!(inst.sigma[inst.position_of(q)], q);
    }

    #[test]
    #[should_panic(expected = "blocks must divide n")]
    fn perm_rejects_ragged_blocks() {
        let mut rng = StdRng::seed_from_u64(3);
        EpsPermInstance::random(10, 3, &mut rng);
    }

    #[test]
    fn greater_than_never_equal() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let g = GreaterThanInstance::random(10, &mut rng);
            assert_ne!(g.x, g.y);
            assert_eq!(g.answer(), g.x > g.y);
        }
    }
}
