//! Executable lower-bound reductions (§4 of the paper).
//!
//! A space lower bound cannot be "measured", but a reduction can be
//! *executed*: the paper's §4 arguments all have the same operational
//! shape — Alice encodes her input as a stream prefix, runs the streaming
//! algorithm, and sends its state to Bob, who extends the stream and
//! decodes his answer from the report. If the algorithm used fewer bits
//! than the communication complexity of the source problem, the protocol
//! would beat a proven communication bound; contrapositive: the algorithm
//! must use at least that much space.
//!
//! This crate makes every reduction runnable with the *real* algorithms
//! from `hh-core`/`hh-votes` as the message:
//!
//! | Module | Paper | Source problem | Target |
//! |--------|-------|----------------|--------|
//! | [`reductions::hh_indexing`] | Thm 9 | Indexing | (ε,φ)-heavy hitters |
//! | [`reductions::max_indexing`] | Thm 10 | Indexing | ε-Maximum |
//! | [`reductions::min_indexing`] | Thm 11 | Indexing | ε-Minimum |
//! | [`reductions::borda_perm`] | Thm 12 | ε-Perm | ε-Borda |
//! | [`reductions::maximin_distance`] | Thm 13 | Indexing via \[VWWZ15\] distance matrices | ε-Maximin |
//! | [`reductions::greater_than`] | Thm 14 | Greater-Than | log log m term |
//!
//! Each run reports the decoded answer, whether it matched, the message
//! length (the algorithm's `model_bits` plus any auxiliary payload the
//! protocol sends), and the source problem's communication-complexity
//! shape for comparison. Experiment E8 sweeps these over many random
//! instances.
//!
//! # Example
//!
//! ```
//! use hh_lower_bounds::{IndexingInstance, reductions::hh_indexing};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(11);
//! let instance = IndexingInstance::random(8, 32, &mut rng);
//! let outcome = hh_indexing::run(&instance, 600, 1200, 1);
//! assert!(outcome.success);                       // Bob decodes x_i
//! assert!(outcome.message_bits as f64 >= outcome.lower_bound_units);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod problems;
pub mod protocol;
pub mod reductions;

pub use problems::{EpsPermInstance, GreaterThanInstance, IndexingInstance};
pub use protocol::ReductionOutcome;
