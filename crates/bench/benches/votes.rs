//! E6 (part 4): vote-stream update costs (Theorems 5 and 6).
//!
//! A Borda update touches all `n` counters of a sampled vote; a maximin
//! update stores the vote. Both are benchmarked per vote across `n`,
//! alongside the Mallows vote generator itself (workload cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hh_votes::{MallowsModel, Ranking, StreamingBorda, StreamingMaximin, VoteSummary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

const VOTES: usize = 2_000;

fn votes(n: usize, seed: u64) -> Vec<Ranking> {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = MallowsModel::new(Ranking::identity(n), 0.8);
    (0..VOTES).map(|_| model.sample(&mut rng)).collect()
}

fn bench_votes(c: &mut Criterion) {
    let mut g = c.benchmark_group("vote_updates");
    g.throughput(Throughput::Elements(VOTES as u64));
    for n in [8usize, 32, 128] {
        let data = votes(n, n as u64);
        g.bench_with_input(BenchmarkId::new("borda_insert", n), &data, |b, data| {
            b.iter(|| {
                let mut a = StreamingBorda::new(n, 0.1, 0.5, 0.1, VOTES as u64, 1).unwrap();
                a.insert_votes(black_box(data));
                a.samples()
            })
        });
        g.bench_with_input(BenchmarkId::new("maximin_insert", n), &data, |b, data| {
            b.iter(|| {
                let mut a = StreamingMaximin::new(n, 0.2, 0.5, 0.1, VOTES as u64, 2).unwrap();
                a.insert_votes(black_box(data));
                a.samples()
            })
        });
        g.bench_with_input(BenchmarkId::new("mallows_sample", n), &n, |b, &n| {
            let model = MallowsModel::new(Ranking::identity(n), 0.8);
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..VOTES {
                    acc += model.sample(black_box(&mut rng)).top() as u64;
                }
                acc
            })
        });
    }
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_votes
}
criterion_main!(benches);
