//! Key-sharded pipeline throughput: whole-stream ingestion through
//! `hh_pipeline::ShardedPipeline` at 1, 2, and 4 shards for both of the
//! paper's algorithms.
//!
//! Each shard runs the unmodified algorithm on the substream of its keys
//! (batch path, full advertised length, so the sampled work of the whole
//! pipeline equals one unsharded run split across shards); scaling is
//! the partition pass plus the persistent shard runtime's dispatch (in
//! `IngestMode::Auto`, so a single-core host ingests inline — see the
//! `thread_scaling` group for the mode forced both ways). Shard scaling
//! is bounded by the cores the host actually exposes — on a single-core
//! container the 2- and 4-shard rates collapse onto the 1-shard rate
//! plus partition overhead (the recorded BENCH_N carries the host's
//! core count as `_meta/host_cores` for exactly this reason).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hh_core::HhParams;
use hh_pipeline::{sharded_algo1, sharded_algo2};
use std::hint::black_box;
use std::time::Duration;

const M: usize = 1 << 21;
const N: u64 = 1 << 32;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;
const BATCH: usize = 1 << 16;

fn stream() -> Vec<u64> {
    hh_bench::zipf_stream(M, N, 1.2, 7)
}

fn bench_sharded(c: &mut Criterion) {
    let data = stream();
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("sharded_throughput");
    g.throughput(Throughput::Elements(M as u64));

    for shards in [1usize, 2, 4] {
        g.bench_function(format!("algo2_shards{shards}"), |b| {
            b.iter(|| {
                let mut pipe = sharded_algo2(params, N, M as u64, shards, 2).unwrap();
                for chunk in black_box(&data).chunks(BATCH) {
                    pipe.ingest(chunk);
                }
                pipe
            })
        });
    }
    for shards in [1usize, 4] {
        g.bench_function(format!("algo1_shards{shards}"), |b| {
            b.iter(|| {
                let mut pipe = sharded_algo1(params, N, M as u64, shards, 1).unwrap();
                for chunk in black_box(&data).chunks(BATCH) {
                    pipe.ingest(chunk);
                }
                pipe
            })
        });
    }
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_sharded
}
criterion_main!(benches);
