//! BENCH_10 group: `wal` — the write-ahead log's cost surface.
//!
//! PR 10 puts an `hh-wal` append + commit on every acked ingest, so the
//! durability tax deserves its own trajectory group: the gate watches
//! the log itself (not just the serving path it hides inside):
//!
//! * **append_commit_os_buffered / _group_commit / _per_batch** — one
//!   4 KiB record appended and committed under each [`FsyncPolicy`]:
//!   the no-promise floor, the amortized production policy, and the
//!   fsync-per-ack ceiling. The spread between them is the price of
//!   each durability level on this host's disk.
//! * **replay_10k** — cold-start replay throughput over a 10 000-record
//!   multi-segment log: the recovery-time budget a crash incurs.
//! * **serve_ingest_checkpoint_only / serve_ingest_wal** — the serving
//!   daemon's acked-ingest RTT over loopback TCP without and with the
//!   log, same batch shape as `serve_throughput/ingest_wire`: what a
//!   client actually pays for zero acked loss.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hh_server::client::Client;
use hh_server::durability::Durability;
use hh_server::facade::{SummaryKind, TenantSpec};
use hh_server::server::{Endpoint, Server, ServerConfig};
use hh_wal::{replay_dir, FsyncPolicy, Wal, WalConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

/// One ingest frame's order of magnitude (512 items).
const PAYLOAD: usize = 4096;
const BATCH: usize = 1 << 12;
const UNIVERSE: u64 = 1 << 24;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hh-wal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A loopback daemon with one SpaceSaving tenant under the given
/// durability, checkpointing pushed out of the measurement window.
fn serving_pair(tag: &str, durability: Durability) -> (Server, Client, PathBuf) {
    let root = scratch(tag);
    let mut config = ServerConfig::new(&root);
    config.checkpoint_every = Duration::from_secs(3_600);
    config.durability = durability;
    let server = Server::start(config, Endpoint::Tcp("127.0.0.1:0".parse().unwrap()))
        .expect("bind loopback");
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).expect("connect");
    let spec = TenantSpec {
        kind: SummaryKind::SpaceSaving,
        universe: UNIVERSE,
        m: 1 << 22,
        shards: 1,
        ..TenantSpec::default()
    };
    client.create("bench", spec).expect("create tenant");
    (server, client, root)
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");

    // --- The log itself: append + commit under each policy. ---
    let payload = vec![0xA5u8; PAYLOAD];
    for (id, fsync) in [
        ("append_commit_os_buffered", FsyncPolicy::OsBuffered),
        (
            "append_commit_group_commit",
            FsyncPolicy::GroupCommit(Duration::from_millis(1)),
        ),
        ("append_commit_per_batch", FsyncPolicy::PerBatch),
    ] {
        let dir = scratch(id);
        let (wal, _) = Wal::open(
            WalConfig {
                dir: dir.clone(),
                segment_bytes: 64 << 20,
                fsync,
            },
            1,
        )
        .expect("open wal");
        g.throughput(Throughput::Bytes(PAYLOAD as u64));
        g.bench_function(id, |b| {
            b.iter(|| {
                let seq = wal.append(black_box(&payload)).expect("append");
                wal.commit(seq).expect("commit");
                black_box(seq)
            })
        });
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- Cold-start replay over a multi-segment log. ---
    const RECORDS: u64 = 10_000;
    let dir = scratch("replay");
    {
        let (wal, _) = Wal::open(
            WalConfig {
                dir: dir.clone(),
                segment_bytes: 1 << 20,
                fsync: FsyncPolicy::OsBuffered,
            },
            1,
        )
        .expect("open wal");
        let rec = vec![0x5Au8; 512];
        for _ in 0..RECORDS {
            wal.append(&rec).expect("append");
        }
        wal.sync().expect("sync");
    }
    g.throughput(Throughput::Elements(RECORDS));
    g.bench_function("replay_10k", |b| {
        b.iter(|| {
            let replay = replay_dir(&dir).expect("replay");
            assert_eq!(replay.records.len() as u64, RECORDS);
            black_box(replay.segments)
        })
    });
    let _ = std::fs::remove_dir_all(&dir);

    // --- The serving tax: acked-ingest RTT without and with the log. ---
    let data = hh_bench::zipf_stream(1 << 18, UNIVERSE, 1.2, 11);
    for (id, durability) in [
        ("serve_ingest_checkpoint_only", Durability::CheckpointOnly),
        (
            "serve_ingest_wal",
            Durability::Wal {
                fsync: FsyncPolicy::GroupCommit(Duration::from_millis(1)),
                segment_bytes: 64 << 20,
            },
        ),
    ] {
        let (server, mut client, root) = serving_pair(id, durability);
        g.throughput(Throughput::Elements(BATCH as u64));
        let mut at = 0usize;
        g.bench_function(id, |b| {
            b.iter(|| {
                let chunk = &data[at..at + BATCH];
                at = (at + BATCH) % (data.len() - BATCH);
                black_box(client.ingest("bench", 0, black_box(chunk)).expect("ingest"))
            })
        });
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_wal
}
criterion_main!(benches);
