//! Batched-ingestion throughput: the same summaries, parameters, and
//! Zipf stream as the `update_time` group, driven through
//! `StreamSummary::insert_batch` in realistic-sized chunks.
//!
//! The per-id ratio against `update_time` is the payoff of the batch
//! restructurings — skip-ahead over unsampled runs (Algorithms 1 and 2),
//! the hash-pass/update-pass split (Count-Min, CountSketch, Misra–Gries),
//! the singleton-bucket bump (Space-Saving), and hoisted window checks
//! (Lossy, Sticky). `scripts/bench_compare` tracks both groups in the
//! BENCH_N trajectory.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hh_baselines::{
    CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving, StickySampling,
};
use hh_core::{HhParams, OptimalListHh, SimpleListHh, StreamSummary};
use std::hint::black_box;
use std::time::Duration;

const M: usize = 1 << 21;
const N: u64 = 1 << 32;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;
/// Ingestion batch size: large enough to amortize per-batch setup, small
/// enough to model a network receive buffer rather than a stored file.
const BATCH: usize = 1 << 14;

fn stream() -> Vec<u64> {
    hh_bench::zipf_stream(M, N, 1.2, 7)
}

fn drive<S: StreamSummary>(mut s: S, data: &[u64]) -> S {
    for chunk in data.chunks(BATCH) {
        s.insert_batch(chunk);
    }
    s
}

fn bench_batch_updates(c: &mut Criterion) {
    let data = stream();
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("batch_update_time");
    g.throughput(Throughput::Elements(M as u64));

    g.bench_function("algo1_simple", |b| {
        b.iter_batched(
            || SimpleListHh::new(params, N, M as u64, 1).unwrap(),
            |a| drive(a, black_box(&data)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("algo2_optimal", |b| {
        b.iter_batched(
            || OptimalListHh::new(params, N, M as u64, 2).unwrap(),
            |a| drive(a, black_box(&data)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("misra_gries", |b| {
        b.iter_batched(
            || MisraGriesBaseline::new(EPS, PHI, N),
            |a| drive(a, black_box(&data)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("space_saving", |b| {
        b.iter_batched(
            || SpaceSaving::new(EPS, PHI, N),
            |a| drive(a, black_box(&data)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("lossy_counting", |b| {
        b.iter_batched(
            || LossyCounting::new(EPS, PHI, N),
            |a| drive(a, black_box(&data)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("sticky_sampling", |b| {
        b.iter_batched(
            || StickySampling::new(EPS, PHI, DELTA, N, 3),
            |a| drive(a, black_box(&data)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("count_min", |b| {
        b.iter_batched(
            || CountMin::new(EPS, PHI, DELTA, N, 4),
            |a| drive(a, black_box(&data)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("count_sketch", |b| {
        b.iter_batched(
            || CountSketch::new(EPS, PHI, DELTA, N, 5),
            |a| drive(a, black_box(&data)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_batch_updates
}
criterion_main!(benches);
