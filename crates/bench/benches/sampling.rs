//! E6 (part 3): the sampling fast path.
//!
//! The `O(1)` worst-case update claim rests on the skip sampler doing a
//! single decrement on the common (unsampled) path. This bench compares
//! the per-item coin flip (a fresh random word per item) against the
//! geometric skip, plus the Morris counter increment used by the
//! unknown-length wrapper.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hh_sampling::{BernoulliSampler, MorrisCounter, SkipSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

const ITEMS: u64 = 1 << 16;

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.throughput(Throughput::Elements(ITEMS));

    g.bench_function("coin_per_item_p2^-6", |b| {
        let s = BernoulliSampler::with_exponent(6);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..ITEMS {
                hits += u64::from(s.accept(black_box(&mut rng)));
            }
            hits
        })
    });
    g.bench_function("skip_sampler_p2^-6", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut s = SkipSampler::with_exponent(6);
            let mut hits = 0u64;
            for _ in 0..ITEMS {
                hits += u64::from(s.accept(black_box(&mut rng)));
            }
            hits
        })
    });
    g.bench_function("morris_increment", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut m = MorrisCounter::new();
            for _ in 0..ITEMS {
                m.increment(black_box(&mut rng));
            }
            m.estimate()
        })
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_sampling
}
criterion_main!(benches);
