//! E6/E12 support: throughput of the four universal hash families.
//!
//! The hot path of both heavy-hitter algorithms evaluates one hash per
//! sampled item (Algorithm 2: one per repetition); the family choice is
//! a constant-factor knob this bench quantifies.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hh_hash::{
    CarterWegmanFamily, HashFamily, HashFunction, MultiplyShiftFamily, PolynomialFamily,
    TabulationFamily,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

const KEYS: usize = 1 << 14;

fn bench_hashing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let keys: Vec<u64> = (0..KEYS as u64)
        .map(|i| i.wrapping_mul(0x9E3779B9))
        .collect();
    let cw = CarterWegmanFamily::new(1 << 16).sample(&mut rng);
    let ms = MultiplyShiftFamily::new_pow2(16).sample(&mut rng);
    let p2 = PolynomialFamily::new(1 << 16, 2).sample(&mut rng);
    let p4 = PolynomialFamily::new(1 << 16, 4).sample(&mut rng);
    let tab = TabulationFamily::new_pow2(16).sample(&mut rng);

    let mut g = c.benchmark_group("hashing");
    g.throughput(Throughput::Elements(KEYS as u64));
    g.bench_function("carter_wegman", |b| {
        b.iter(|| keys.iter().map(|&k| cw.hash(black_box(k))).sum::<u64>())
    });
    g.bench_function("multiply_shift", |b| {
        b.iter(|| keys.iter().map(|&k| ms.hash(black_box(k))).sum::<u64>())
    });
    g.bench_function("polynomial_k2", |b| {
        b.iter(|| keys.iter().map(|&k| p2.hash(black_box(k))).sum::<u64>())
    });
    g.bench_function("polynomial_k4", |b| {
        b.iter(|| keys.iter().map(|&k| p4.hash(black_box(k))).sum::<u64>())
    });
    g.bench_function("tabulation", |b| {
        b.iter(|| keys.iter().map(|&k| tab.hash(black_box(k))).sum::<u64>())
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_hashing
}
criterion_main!(benches);
