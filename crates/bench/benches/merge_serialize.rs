//! BENCH_4 groups: `merge` and `serialize` — the cost of the
//! mergeability + persistence subsystem (PR 4).
//!
//! `merge` measures folding one summary of half the fixed Zipf workload
//! into another (the combiner step of a distributed aggregation or a
//! window rotation); throughput is stated in elements covered by the
//! merged result. `serialize` measures a full snapshot round trip
//! (`to_bytes` then `from_bytes`) of a summary loaded with the whole
//! workload — the checkpoint/restore path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hh_baselines::{CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving};
use hh_core::{HhParams, MergeableSummary, OptimalListHh, SimpleListHh, StreamSummary};
use std::hint::black_box;
use std::time::Duration;

const M: usize = 1 << 21;
const N: u64 = 1 << 32;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;

fn stream() -> Vec<u64> {
    hh_bench::zipf_stream(M, N, 1.2, 7)
}

/// Builds a seed-aligned pair, each loaded with one half of the stream.
fn loaded_pair<S: StreamSummary>(data: &[u64], make: impl Fn(u64) -> S) -> (S, S) {
    let (left, right) = data.split_at(data.len() / 2);
    let mut a = make(1);
    a.insert_batch(left);
    let mut b = make(2);
    b.insert_batch(right);
    (a, b)
}

fn bench_merge(c: &mut Criterion) {
    let data = stream();
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("merge");
    g.throughput(Throughput::Elements(M as u64));

    let (a1, b1) = loaded_pair(&data, |s| {
        SimpleListHh::with_seeds(params, N, M as u64, 9, s).unwrap()
    });
    g.bench_function("algo1_merge_pair", |b| {
        b.iter_batched(
            || a1.clone(),
            |mut acc| {
                acc.merge_from(black_box(&b1)).unwrap();
                acc
            },
            BatchSize::LargeInput,
        )
    });

    let (a2, b2) = loaded_pair(&data, |s| {
        OptimalListHh::with_seeds(params, N, M as u64, 9, s).unwrap()
    });
    g.bench_function("algo2_merge_pair", |b| {
        b.iter_batched(
            || a2.clone(),
            |mut acc| {
                acc.merge_from(black_box(&b2)).unwrap();
                acc
            },
            BatchSize::LargeInput,
        )
    });

    let (amg, bmg) = loaded_pair(&data, |_| MisraGriesBaseline::new(EPS, PHI, N));
    g.bench_function("misra_gries_merge_pair", |b| {
        b.iter_batched(
            || amg.clone(),
            |mut acc| {
                acc.merge_from(black_box(&bmg)).unwrap();
                acc
            },
            BatchSize::LargeInput,
        )
    });

    let (ass, bss) = loaded_pair(&data, |_| SpaceSaving::new(EPS, PHI, N));
    g.bench_function("space_saving_merge_pair", |b| {
        b.iter_batched(
            || ass.clone(),
            |mut acc| {
                acc.merge_from(black_box(&bss)).unwrap();
                acc
            },
            BatchSize::LargeInput,
        )
    });

    let (alc, blc) = loaded_pair(&data, |_| LossyCounting::new(EPS, PHI, N));
    g.bench_function("lossy_counting_merge_pair", |b| {
        b.iter_batched(
            || alc.clone(),
            |mut acc| {
                acc.merge_from(black_box(&blc)).unwrap();
                acc
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let data = stream();
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("serialize");

    let mut a1 = SimpleListHh::new(params, N, M as u64, 1).unwrap();
    a1.insert_batch(&data);
    g.bench_function("algo1_snapshot_roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&a1).to_bytes();
            SimpleListHh::from_bytes(black_box(&bytes)).unwrap()
        })
    });

    let mut a2 = OptimalListHh::new(params, N, M as u64, 2).unwrap();
    a2.insert_batch(&data);
    g.bench_function("algo2_snapshot_roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&a2).to_bytes();
            OptimalListHh::from_bytes(black_box(&bytes)).unwrap()
        })
    });

    let mut mg = MisraGriesBaseline::new(EPS, PHI, N);
    mg.insert_batch(&data);
    g.bench_function("misra_gries_snapshot_roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&mg).to_bytes();
            MisraGriesBaseline::from_bytes(black_box(&bytes)).unwrap()
        })
    });

    let mut ss = SpaceSaving::new(EPS, PHI, N);
    ss.insert_batch(&data);
    g.bench_function("space_saving_snapshot_roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&ss).to_bytes();
            SpaceSaving::from_bytes(black_box(&bytes)).unwrap()
        })
    });
    g.finish();
}

/// BENCH_7 group: `snapshot_decode` — the restore path alone, on
/// pre-built snapshot buffers. This is the path PR 7 hardened (tag
/// match, trailing-checksum verification, bounded length reads,
/// restore-time invariant checks), so it gets its own group: the
/// fail-closed codec must stay within the regression budget of the
/// trusting one it replaced. Throughput is stated in snapshot bytes.
fn bench_snapshot_decode(c: &mut Criterion) {
    let data = stream();
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("snapshot_decode");

    fn loaded_bytes<S: MergeableSummary>(data: &[u64], mut s: S) -> Vec<u8> {
        s.insert_batch(data);
        s.to_bytes().to_vec()
    }

    let b1 = loaded_bytes(&data, SimpleListHh::new(params, N, M as u64, 1).unwrap());
    g.throughput(Throughput::Bytes(b1.len() as u64));
    g.bench_function("algo1_decode", |b| {
        b.iter(|| SimpleListHh::from_bytes(black_box(&b1)).unwrap())
    });

    let b2 = loaded_bytes(&data, OptimalListHh::new(params, N, M as u64, 2).unwrap());
    g.throughput(Throughput::Bytes(b2.len() as u64));
    g.bench_function("algo2_decode", |b| {
        b.iter(|| OptimalListHh::from_bytes(black_box(&b2)).unwrap())
    });

    let bmg = loaded_bytes(&data, MisraGriesBaseline::new(EPS, PHI, N));
    g.throughput(Throughput::Bytes(bmg.len() as u64));
    g.bench_function("misra_gries_decode", |b| {
        b.iter(|| MisraGriesBaseline::from_bytes(black_box(&bmg)).unwrap())
    });

    let bss = loaded_bytes(&data, SpaceSaving::new(EPS, PHI, N));
    g.throughput(Throughput::Bytes(bss.len() as u64));
    g.bench_function("space_saving_decode", |b| {
        b.iter(|| SpaceSaving::from_bytes(black_box(&bss)).unwrap())
    });

    let bcm = loaded_bytes(&data, CountMin::new(EPS, PHI, DELTA, N, 3));
    g.throughput(Throughput::Bytes(bcm.len() as u64));
    g.bench_function("count_min_decode", |b| {
        b.iter(|| CountMin::from_bytes(black_box(&bcm)).unwrap())
    });

    let bcs = loaded_bytes(&data, CountSketch::new(0.1, PHI, DELTA, N, 4));
    g.throughput(Throughput::Bytes(bcs.len() as u64));
    g.bench_function("count_sketch_decode", |b| {
        b.iter(|| CountSketch::from_bytes(black_box(&bcs)).unwrap())
    });

    let blc = loaded_bytes(&data, LossyCounting::new(EPS, PHI, N));
    g.throughput(Throughput::Bytes(blc.len() as u64));
    g.bench_function("lossy_counting_decode", |b| {
        b.iter(|| LossyCounting::from_bytes(black_box(&blc)).unwrap())
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_merge, bench_serialize, bench_snapshot_decode
}
criterion_main!(benches);
