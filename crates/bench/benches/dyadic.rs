//! BENCH_9 group: `dyadic` — the hierarchical range-query bank.
//!
//! A `DyadicHh` bank multiplies every cost by the level count (L = 16
//! here: a 16-bit key space keeps the trajectory workload affordable),
//! so this group pins the four prices a caller pays: ingestion (one
//! update per level per item), the heavy-prefix descent (warm = the
//! cached configured-φ forest, cold = a stricter φ that re-descends),
//! the canonical range decomposition (≤ 2L point estimates for a
//! worst-case interval), and the bank-wide merge and snapshot paths
//! that make it a first-class mergeable summary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hh_core::{HhParams, MergeableSummary, StreamSummary};
use hh_dyadic::DyadicHh;
use std::hint::black_box;
use std::time::Duration;

const M: usize = 1 << 17;
const N: u64 = 1 << 16;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;

fn bench_dyadic(c: &mut Criterion) {
    let data = hh_bench::zipf_stream(M, N, 1.2, 21);
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("dyadic");

    // Ingestion: the L-fold update cost, via the batched kernel.
    let empty_cm = DyadicHh::count_min(EPS, PHI, DELTA, N, 31).unwrap();
    g.throughput(Throughput::Elements(M as u64));
    g.bench_function("count_min_ingest_batch", |b| {
        b.iter_batched(
            || empty_cm.clone(),
            |mut bank| {
                bank.insert_batch(black_box(&data));
                bank
            },
            BatchSize::LargeInput,
        )
    });
    let empty_a2 = DyadicHh::optimal(params, N, M as u64, 31, 32).unwrap();
    g.bench_function("algo2_ingest_batch", |b| {
        b.iter_batched(
            || empty_a2.clone(),
            |mut bank| {
                bank.insert_batch(black_box(&data));
                bank
            },
            BatchSize::LargeInput,
        )
    });

    let mut cm = empty_cm.clone();
    cm.insert_batch(&data);
    let mut a2 = empty_a2.clone();
    a2.insert_batch(&data);

    // Heavy-prefix forest: warm hits the per-bank QueryCache, cold uses
    // a stricter φ and re-runs the pruned descent every call.
    g.throughput(Throughput::Elements(1));
    g.bench_function("count_min_heavy_ranges_warm", |b| {
        b.iter(|| black_box(cm.heavy_ranges(PHI)))
    });
    g.bench_function("count_min_heavy_ranges_cold", |b| {
        b.iter(|| black_box(cm.heavy_ranges(PHI * 1.25)))
    });
    g.bench_function("algo2_heavy_ranges_cold", |b| {
        b.iter(|| black_box(a2.heavy_ranges(PHI * 1.25)))
    });

    // Worst-case interval: both endpoints interior, so the canonical
    // decomposition needs nodes at (almost) every level twice.
    g.bench_function("count_min_range_estimate", |b| {
        b.iter(|| black_box(cm.range_estimate(black_box(1), black_box(N - 2))))
    });

    // Merge and snapshot: L level merges / L tagged level buffers.
    let halves = hh_dyadic::seed_aligned_count_min(EPS, PHI, DELTA, N, 2, 31).unwrap();
    let (mut left, mut right) = {
        let mut it = halves.into_iter();
        (it.next().unwrap(), it.next().unwrap())
    };
    let (lo, hi) = data.split_at(M / 2);
    left.insert_batch(lo);
    right.insert_batch(hi);
    g.bench_function("count_min_merge_pair", |b| {
        b.iter_batched(
            || left.clone(),
            |mut acc| {
                acc.merge_from(black_box(&right)).unwrap();
                acc
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("count_min_snapshot_roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&cm).to_bytes();
            DyadicHh::<hh_baselines::CountMin>::from_bytes(black_box(&bytes)).unwrap()
        })
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_dyadic
}
criterion_main!(benches);
