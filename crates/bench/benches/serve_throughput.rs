//! BENCH_8 group: `serve_throughput` — the serving daemon measured
//! end-to-end over loopback TCP.
//!
//! Every other trajectory group benches in-process calls; this one pays
//! the full serving tax per operation — frame encode, socket write,
//! server decode, shard dispatch, response frame — so a regression in
//! any layer of `hh-server` (protocol codec, deadline plumbing, tenant
//! routing, epoch-swapped reads) lands here even if the summaries
//! themselves got no slower:
//!
//! * **ping_rtt** — the protocol floor: one empty request/response
//!   round trip, bounding what framing + deadlines cost by themselves.
//! * **ingest_wire** — one acked batch per iteration, element
//!   throughput: the serving ingest path clients actually pay.
//! * **query_wire** — one report read per iteration against a quiescent
//!   tenant: the epoch-cached serving read.
//!
//! Tail behaviour is recorded alongside the means as `_meta` entries
//! (`serve_query_p50_ns` / `serve_query_p99_ns` from a 400-call sweep),
//! since a serving path is judged by its p99, not its average.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hh_server::client::Client;
use hh_server::durability::Durability;
use hh_server::facade::{SummaryKind, TenantSpec};
use hh_server::server::{Endpoint, Server, ServerConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

const BATCH: usize = 1 << 12;
const UNIVERSE: u64 = 1 << 24;

/// A daemon on a loopback port with one SpaceSaving tenant pre-loaded,
/// plus a connected client. Checkpointing is pushed out of the
/// measurement window so the numbers are the steady-state serving path.
fn serving_pair() -> (Server, Client, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("hh-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut config = ServerConfig::new(&root);
    config.checkpoint_every = Duration::from_secs(3_600);
    // This group's trajectory predates the write-ahead log; it keeps
    // measuring the bare serving path. The WAL's ingest tax has its own
    // gated group (`wal/serve_ingest_wal`, benches/wal.rs).
    config.durability = Durability::CheckpointOnly;
    let server = Server::start(config, Endpoint::Tcp("127.0.0.1:0".parse().unwrap()))
        .expect("bind loopback");
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).expect("connect");
    let spec = TenantSpec {
        kind: SummaryKind::SpaceSaving,
        universe: UNIVERSE,
        m: 1 << 22,
        shards: 1,
        ..TenantSpec::default()
    };
    client.create("bench", spec).expect("create tenant");
    let warm = hh_bench::zipf_stream(1 << 16, UNIVERSE, 1.2, 7);
    for chunk in warm.chunks(BATCH) {
        client.ingest("bench", 0, chunk).expect("warm ingest");
    }
    (server, client, root)
}

fn bench_serving(c: &mut Criterion) {
    let (server, mut client, root) = serving_pair();
    let data = hh_bench::zipf_stream(1 << 18, UNIVERSE, 1.2, 11);

    // Tail sweep first, against the warm tenant, before the bench loops
    // perturb anything: 400 timed query round trips.
    let mut lat: Vec<u64> = (0..400)
        .map(|_| {
            let t0 = Instant::now();
            black_box(client.query("bench").expect("query"));
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    lat.sort_unstable();
    c.record_metadata("serve_query_p50_ns", lat[lat.len() / 2] as f64);
    c.record_metadata("serve_query_p99_ns", lat[lat.len() * 99 / 100] as f64);

    let mut g = c.benchmark_group("serve_throughput");

    g.bench_function("ping_rtt", |b| b.iter(|| client.ping().expect("ping")));

    g.throughput(Throughput::Elements(BATCH as u64));
    let mut at = 0usize;
    g.bench_function("ingest_wire", |b| {
        b.iter(|| {
            let chunk = &data[at..at + BATCH];
            at = (at + BATCH) % (data.len() - BATCH);
            black_box(client.ingest("bench", 0, black_box(chunk)).expect("ingest"))
        })
    });

    g.throughput(Throughput::Elements(1));
    g.bench_function("query_wire", |b| {
        b.iter(|| black_box(client.query("bench").expect("query")))
    });
    g.finish();

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_serving
}
criterion_main!(benches);
