//! E6 (part 3): query time — `report()` extraction cost for every
//! summary in the workspace at three universe sizes.
//!
//! The paper claims reporting "linear in the output size" for its
//! algorithms; the baselines' reports scan candidate structures whose
//! size depends on (ε, φ) but not on `n`. Benchmarking all eight on the
//! same Zipf workload at n = 2¹⁶, 2²⁴, 2³² makes query-path regressions
//! visible in the BENCH_N trajectory (the `report_time` group already
//! tracks the paper algorithms' output-size scaling; this group tracks
//! every summary's absolute extraction cost).

use criterion::{criterion_group, criterion_main, Criterion};
use hh_baselines::{
    CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving, StickySampling,
};
use hh_core::{HeavyHitters, HhParams, OptimalListHh, SimpleListHh, StreamSummary};
use std::hint::black_box;
use std::time::Duration;

const M: usize = 1 << 19;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;

fn bench_query(c: &mut Criterion) {
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("query_time");
    for log_n in [16u32, 24, 32] {
        let n = 1u64 << log_n;
        let data = hh_bench::zipf_stream(M, n, 1.2, 11);

        let mut algo1 = SimpleListHh::new(params, n, M as u64, 1).unwrap();
        algo1.insert_all(&data);
        g.bench_function(format!("algo1_n{log_n}"), |b| {
            b.iter(|| black_box(algo1.report()))
        });

        let mut algo2 = OptimalListHh::new(params, n, M as u64, 2).unwrap();
        algo2.insert_all(&data);
        g.bench_function(format!("algo2_n{log_n}"), |b| {
            b.iter(|| black_box(algo2.report()))
        });

        let mut mg = MisraGriesBaseline::new(EPS, PHI, n);
        mg.insert_all(&data);
        g.bench_function(format!("misra_gries_n{log_n}"), |b| {
            b.iter(|| black_box(mg.report()))
        });

        let mut ss = SpaceSaving::new(EPS, PHI, n);
        ss.insert_all(&data);
        g.bench_function(format!("space_saving_n{log_n}"), |b| {
            b.iter(|| black_box(ss.report()))
        });

        let mut lossy = LossyCounting::new(EPS, PHI, n);
        lossy.insert_all(&data);
        g.bench_function(format!("lossy_counting_n{log_n}"), |b| {
            b.iter(|| black_box(lossy.report()))
        });

        let mut sticky = StickySampling::new(EPS, PHI, DELTA, n, 3);
        sticky.insert_all(&data);
        g.bench_function(format!("sticky_sampling_n{log_n}"), |b| {
            b.iter(|| black_box(sticky.report()))
        });

        let mut cm = CountMin::new(EPS, PHI, DELTA, n, 4);
        cm.insert_all(&data);
        g.bench_function(format!("count_min_n{log_n}"), |b| {
            b.iter(|| black_box(cm.report()))
        });

        let mut cs = CountSketch::new(EPS, PHI, DELTA, n, 5);
        cs.insert_all(&data);
        g.bench_function(format!("count_sketch_n{log_n}"), |b| {
            b.iter(|| black_box(cs.report()))
        });
    }
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_query
}
criterion_main!(benches);
