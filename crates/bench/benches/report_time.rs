//! E6 (part 2): reporting time — the paper claims reporting "linear in
//! the output size" for Theorems 1 and 2.
//!
//! Benchmarks `report()` after identical streams while φ sweeps the
//! output size: halving φ roughly doubles the number of reportable items,
//! and report time should scale with the output, not with `m` or `1/ε`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_core::{HeavyHitters, HhParams, OptimalListHh, SimpleListHh, StreamSummary};
use std::hint::black_box;
use std::time::Duration;

const M: u64 = 1 << 18;
const N: u64 = 1 << 32;

/// Graduated plant: 4 items at 8%, 8 at 3%, 12 at 1.5% — so the output
/// size steps 0 / 4 / 12 / 24 as φ sweeps down.
fn stream() -> Vec<u64> {
    let mut heavy: Vec<(u64, f64)> = (0..4).map(|i| (i, 0.08)).collect();
    heavy.extend((4..12).map(|i| (i, 0.03)));
    heavy.extend((12..24).map(|i| (i, 0.015)));
    hh_bench::planted_stream(M, &heavy, 99)
}

fn bench_report(c: &mut Criterion) {
    let data = stream();
    let mut g = c.benchmark_group("report_time");
    for phi in [0.2, 0.06, 0.025, 0.012] {
        let eps = phi / 2.0;
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        let mut a1 = SimpleListHh::new(params, N, M, 1).unwrap();
        a1.insert_all(&data);
        let out1 = a1.report().len();
        g.bench_with_input(
            BenchmarkId::new(format!("algo1_out{out1}"), phi),
            &a1,
            |b, a| b.iter(|| black_box(a.report())),
        );
        let mut a2 = OptimalListHh::new(params, N, M, 2).unwrap();
        a2.insert_all(&data);
        let out2 = a2.report().len();
        g.bench_with_input(
            BenchmarkId::new(format!("algo2_out{out2}"), phi),
            &a2,
            |b, a| b.iter(|| black_box(a.report())),
        );
    }
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_report
}
criterion_main!(benches);
