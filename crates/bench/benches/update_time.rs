//! E6 (part 1): per-item update time — the paper claims `O(1)` worst-case
//! updates for Algorithms 1 and 2 under the stream-length assumption.
//!
//! Measures whole-stream insertion throughput (elements/second) for the
//! paper's algorithms and every baseline on the same Zipf stream. The
//! expected shape: the sampling-based algorithms beat the per-item
//! baselines because the skip sampler does O(1) *arithmetic* on the
//! common path (no table access at all), which is the operational content
//! of the `O(1)` update claim.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hh_baselines::{
    CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving, StickySampling,
};
use hh_core::{HhParams, OptimalListHh, SimpleListHh, StreamSummary};
use std::hint::black_box;
use std::time::Duration;

const M: usize = 1 << 21;
const N: u64 = 1 << 32;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;

fn stream() -> Vec<u64> {
    hh_bench::zipf_stream(M, N, 1.2, 7)
}

fn bench_updates(c: &mut Criterion) {
    let data = stream();
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("update_time");
    g.throughput(Throughput::Elements(M as u64));

    g.bench_function("algo1_simple", |b| {
        b.iter_batched(
            || SimpleListHh::new(params, N, M as u64, 1).unwrap(),
            |mut a| {
                a.insert_all(black_box(&data));
                a
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("algo2_optimal", |b| {
        b.iter_batched(
            || OptimalListHh::new(params, N, M as u64, 2).unwrap(),
            |mut a| {
                a.insert_all(black_box(&data));
                a
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("misra_gries", |b| {
        b.iter_batched(
            || MisraGriesBaseline::new(EPS, PHI, N),
            |mut a| {
                a.insert_all(black_box(&data));
                a
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("space_saving", |b| {
        b.iter_batched(
            || SpaceSaving::new(EPS, PHI, N),
            |mut a| {
                a.insert_all(black_box(&data));
                a
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("lossy_counting", |b| {
        b.iter_batched(
            || LossyCounting::new(EPS, PHI, N),
            |mut a| {
                a.insert_all(black_box(&data));
                a
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("sticky_sampling", |b| {
        b.iter_batched(
            || StickySampling::new(EPS, PHI, DELTA, N, 3),
            |mut a| {
                a.insert_all(black_box(&data));
                a
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("count_min", |b| {
        b.iter_batched(
            || CountMin::new(EPS, PHI, DELTA, N, 4),
            |mut a| {
                a.insert_all(black_box(&data));
                a
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("count_sketch", |b| {
        b.iter_batched(
            || CountSketch::new(EPS, PHI, DELTA, N, 5),
            |mut a| {
                a.insert_all(black_box(&data));
                a
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_updates
}
criterion_main!(benches);
