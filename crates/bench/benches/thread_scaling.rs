//! Thread scaling of the persistent shard runtime: whole-stream
//! ingestion through `ShardedPipeline` at 1, 2, and 4 shards, with the
//! ingest mode **forced** both ways so the two execution paths are
//! measured on every host:
//!
//! * `seq_*` — `IngestMode::Sequential`: the key-partition pass plus
//!   inline per-shard `insert_batch` on the calling thread. This is the
//!   single-core baseline and what `Auto` picks on a 1-vCPU box.
//! * `par_*` — `IngestMode::Parallel`: persistent workers behind
//!   bounded queues. On a multi-core host this is where shard scaling
//!   shows up; on a single core it isolates the queue hand-off tax the
//!   runtime pays for its pipelining (workers and dispatcher time-slice
//!   one core, so `par` can only lose there — by design the loss is the
//!   copy + channel cost, not thread spawning, which happens once).
//!
//! Per-core efficiency is `seq_shards1` rate divided by
//! (`par_shardsK` rate × recorded `host_cores`); the README trajectory
//! table narrates it. The group records the host's core count as
//! `_meta/host_cores` in `CRITERION_JSON`, and `bench_compare` refuses
//! to rate this group (and `sharded_throughput`) against a baseline
//! recorded on a host with a different core count — shard-scaling
//! ratios measured on different hardware are not comparable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hh_core::{HhParams, OptimalListHh};
use hh_pipeline::{IngestMode, ShardedPipeline};
use std::hint::black_box;
use std::time::Duration;

const M: usize = 1 << 21;
const N: u64 = 1 << 32;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;
const BATCH: usize = 1 << 16;

fn pipeline(shards: usize, mode: IngestMode) -> ShardedPipeline<OptimalListHh> {
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let summaries = (0..shards)
        .map(|j| OptimalListHh::new(params, N, M as u64, 0x5CA1E ^ j as u64).unwrap())
        .collect();
    ShardedPipeline::with_mode(summaries, 2, PHI - EPS / 2.0, mode)
}

fn bench_thread_scaling(c: &mut Criterion) {
    c.record_metadata(
        "host_cores",
        std::thread::available_parallelism().map_or(1, |n| n.get()) as f64,
    );
    let data = hh_bench::zipf_stream(M, N, 1.2, 7);
    let mut g = c.benchmark_group("thread_scaling");
    g.throughput(Throughput::Elements(M as u64));

    for (mode, tag) in [
        (IngestMode::Sequential, "seq"),
        (IngestMode::Parallel, "par"),
    ] {
        for shards in [1usize, 2, 4] {
            g.bench_function(format!("algo2_{tag}_shards{shards}"), |b| {
                b.iter(|| {
                    let mut pipe = pipeline(shards, mode);
                    for chunk in black_box(&data).chunks(BATCH) {
                        pipe.ingest(chunk);
                    }
                    // Total time includes the drain: scaling claims must
                    // count queued-but-unprocessed work.
                    pipe.report()
                })
            });
        }
    }
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_thread_scaling
}
criterion_main!(benches);
