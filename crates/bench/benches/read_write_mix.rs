//! BENCH_5 groups: `hot_query` and `mixed_read_write` — the serving
//! shapes of the incremental query engine.
//!
//! `query_time` measures `report()` in a tight loop, which after PR 5 is
//! the *cached* path from the second iteration on. These groups pin the
//! two regimes that bound it:
//!
//! * **hot_query** — repeated reads against a quiescent summary (cache
//!   hits by construction): the clone-of-materialized-report cost for
//!   `report()`, and the candidate-table hit for point queries. This is
//!   the per-query cost a serving process pays between batches.
//! * **mixed_read_write** — one small batch then one report per
//!   iteration: every read runs cold (the write invalidated it), so
//!   this bounds the engine from the other side — invalidation overhead
//!   plus the full rebuild (for Algorithm 2, the rep-major T2/T3
//!   candidate scan). A regression here means either the write-path
//!   hooks or the cold rebuild got slower.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hh_baselines::{MisraGriesBaseline, SpaceSaving};
use hh_core::StreamSummary;
use hh_core::{FrequencyEstimator, HeavyHitters, HhParams, OptimalListHh, SimpleListHh};
use std::hint::black_box;
use std::time::Duration;

const M: usize = 1 << 21;
const N: u64 = 1 << 32;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;
/// Write burst between reads in the mixed group: small enough that the
/// read side dominates, large enough to always invalidate.
const MIX_BATCH: usize = 1 << 10;

fn stream() -> Vec<u64> {
    hh_bench::zipf_stream(M, N, 1.2, 7)
}

fn bench_hot_query(c: &mut Criterion) {
    let data = stream();
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("hot_query");

    let mut algo1 = SimpleListHh::new(params, N, M as u64, 1).unwrap();
    algo1.insert_all(&data);
    let _ = algo1.report(); // warm
    g.bench_function("algo1_report", |b| b.iter(|| black_box(algo1.report())));

    let mut algo2 = OptimalListHh::new(params, N, M as u64, 2).unwrap();
    algo2.insert_all(&data);
    let _ = algo2.report();
    g.bench_function("algo2_report", |b| b.iter(|| black_box(algo2.report())));
    // Point query for a reported candidate: the cached-candidate hit.
    let hot_item = algo2.report().top().map(|e| e.item).unwrap_or(1);
    g.bench_function("algo2_estimate", |b| {
        b.iter(|| black_box(algo2.estimate(black_box(hot_item))))
    });

    let mut mg = MisraGriesBaseline::new(EPS, PHI, N);
    mg.insert_all(&data);
    let _ = mg.report();
    g.bench_function("misra_gries_report", |b| b.iter(|| black_box(mg.report())));

    let mut ss = SpaceSaving::new(EPS, PHI, N);
    ss.insert_all(&data);
    let _ = ss.report();
    g.bench_function("space_saving_report", |b| b.iter(|| black_box(ss.report())));
    g.finish();
}

fn bench_mixed(c: &mut Criterion) {
    let data = stream();
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut g = c.benchmark_group("mixed_read_write");
    g.throughput(Throughput::Elements(MIX_BATCH as u64));

    macro_rules! mixed {
        ($id:literal, $summary:expr) => {{
            let mut s = $summary;
            s.insert_all(&data);
            let mut at = 0usize;
            g.bench_function($id, |b| {
                b.iter(|| {
                    let chunk = &data[at..at + MIX_BATCH];
                    at = (at + MIX_BATCH) % (data.len() - MIX_BATCH);
                    s.insert_batch(black_box(chunk));
                    black_box(s.report())
                })
            });
        }};
    }

    mixed!("algo1", SimpleListHh::new(params, N, M as u64, 1).unwrap());
    mixed!("algo2", OptimalListHh::new(params, N, M as u64, 2).unwrap());
    mixed!("misra_gries", MisraGriesBaseline::new(EPS, PHI, N));
    mixed!("space_saving", SpaceSaving::new(EPS, PHI, N));
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_hot_query, bench_mixed
}
criterion_main!(benches);
