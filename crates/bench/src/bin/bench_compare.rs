//! Diffs two BENCH_N.json files (the mini-criterion records emitted by
//! `scripts/bench.sh`) and prints per-benchmark speedup or regression.
//!
//! Usage: `bench_compare [old.json new.json]`
//! With no arguments, compares the two highest-numbered `BENCH_<N>.json`
//! files in the current directory (the benchmark-trajectory convention:
//! each perf PR appends the next `BENCH_N`).
//!
//! Exit code is 1 if any benchmark regressed by more than 10% — the
//! budget the repo's perf acceptance criteria allow — so CI or a
//! pre-merge check can gate on it.
//!
//! **What counts as a regression.** Records are snapshots from
//! whatever host recorded them, and the trajectory hosts are shared
//! single-vCPU boxes where scheduler contention inflates individual
//! samples by 2–10× (steal time only ever *adds* latency). The mean is
//! therefore contaminated noise-first, while the best-of-N sample is
//! the contention-robust floor — a real code slowdown shifts the floor
//! and the mean together, noise shifts only the mean. The gate flags a
//! benchmark only when **both** the mean ratio and the best ratio
//! exceed the 10% budget; the printed table shows both so a
//! mean-only drift is still visible as `noisy`.
//!
//! Benchmarks (or whole groups) that exist only in the newer record are
//! *tolerated*: they print as `new` and never regress — a perf PR that
//! adds a bench group must not have to backfill history. Benchmarks
//! present only in the older record print as `removed`, also without
//! failing.

use std::process::ExitCode;

/// One record of the flat JSON array `scripts/bench.sh` writes.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    group: String,
    id: String,
    mean_ns: f64,
    best_ns: f64,
}

/// Pulls `"key": <string>` out of a JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Pulls `"key": <number>` out of a JSON object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = line[line.find(&tag)? + tag.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the benchmark records out of a `scripts/bench.sh` JSON file.
/// The format is one object per line inside a flat array — a shape this
/// repo controls — so a line-oriented field scan is exact and keeps the
/// vendored serde stub out of the loop. `best_ns` falls back to
/// `mean_ns` for hand-built records that omit it.
fn parse(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for line in text.lines() {
        if !line.trim_start().starts_with('{') {
            continue;
        }
        let (group, id, mean_ns) = match (
            str_field(line, "group"),
            str_field(line, "id"),
            num_field(line, "mean_ns"),
        ) {
            (Some(g), Some(i), Some(m)) => (g, i, m),
            _ => return Err(format!("{path}: malformed record: {line}")),
        };
        let best_ns = num_field(line, "best_ns").unwrap_or(mean_ns);
        out.push(Record {
            group,
            id,
            mean_ns,
            best_ns,
        });
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok(out)
}

/// Finds the two highest-numbered `BENCH_<N>.json` files in `.`.
fn latest_pair() -> Option<(String, String)> {
    let mut numbered: Vec<(u64, String)> = std::fs::read_dir(".")
        .ok()?
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            let n: u64 = name
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((n, name))
        })
        .collect();
    numbered.sort_unstable();
    match numbered.len() {
        0 | 1 => None,
        n => Some((numbered[n - 2].1.clone(), numbered[n - 1].1.clone())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path) = match args.as_slice() {
        [a, b] => (a.clone(), b.clone()),
        [] => match latest_pair() {
            Some(pair) => pair,
            None => {
                eprintln!("bench_compare: need two BENCH_N.json files (or pass paths)");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: bench_compare [old.json new.json]");
            return ExitCode::FAILURE;
        }
    };
    let (old, new) = match (parse(&old_path), parse(&new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("# {old_path} -> {new_path}\n");
    println!(
        "{:<20} {:<18} {:>12} {:>12} {:>9} {:>9}  verdict",
        "group", "id", "old mean", "new mean", "mean", "best"
    );
    let diff = diff(&old, &new);
    for line in &diff.lines {
        println!("{line}");
    }
    if diff.added > 0 {
        println!(
            "\n{} benchmark(s) have no baseline in {old_path} (tolerated as new)",
            diff.added
        );
    }
    if diff.regressed {
        eprintln!("\nbench_compare: at least one benchmark regressed by more than 10%");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Result of comparing two record sets.
struct Diff {
    lines: Vec<String>,
    regressed: bool,
    /// Benchmarks present only in the newer record (tolerated).
    added: usize,
}

/// The regression budget: fail at more than 10% slower.
const BUDGET: f64 = 1.10;

/// Compares `new` against `old` per (group, id). Only benchmarks present
/// in *both* can regress, and only when the mean ratio **and** the
/// best-of-N ratio both blow the budget (see module docs); new and
/// removed ones are reported but never fail the gate.
fn diff(old: &[Record], new: &[Record]) -> Diff {
    let mut lines = Vec::new();
    let mut regressed = false;
    let mut added = 0usize;
    for n in new {
        let Some(o) = old.iter().find(|o| o.group == n.group && o.id == n.id) else {
            added += 1;
            lines.push(format!(
                "{:<20} {:<18} {:>12} {:>12.0} {:>9} {:>9}  new",
                n.group, n.id, "-", n.mean_ns, "-", "-"
            ));
            continue;
        };
        let mean_speedup = o.mean_ns / n.mean_ns;
        let best_speedup = o.best_ns / n.best_ns;
        let verdict = if mean_speedup < 1.0 / BUDGET && best_speedup < 1.0 / BUDGET {
            regressed = true;
            "REGRESSION"
        } else if mean_speedup < 1.0 / BUDGET || best_speedup < 1.0 / BUDGET {
            "noisy"
        } else if mean_speedup > BUDGET {
            "faster"
        } else {
            "flat"
        };
        lines.push(format!(
            "{:<20} {:<18} {:>12.0} {:>12.0} {:>8.2}x {:>8.2}x  {verdict}",
            n.group, n.id, o.mean_ns, n.mean_ns, mean_speedup, best_speedup
        ));
    }
    for o in old {
        if !new.iter().any(|n| n.group == o.group && n.id == o.id) {
            lines.push(format!(
                "{:<20} {:<18} {:>12.0} {:>12} {:>9} {:>9}  removed",
                o.group, o.id, o.mean_ns, "-", "-", "-"
            ));
        }
    }
    Diff {
        lines,
        regressed,
        added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_lines() {
        let line = r#"  {"group": "update_time", "id": "algo2_optimal", "mean_ns": 57523745.3, "best_ns": 1.0, "samples": 3, "throughput_kind": "elements", "throughput": 2097152},"#;
        assert_eq!(str_field(line, "group").unwrap(), "update_time");
        assert_eq!(str_field(line, "id").unwrap(), "algo2_optimal");
        assert_eq!(num_field(line, "mean_ns").unwrap(), 57523745.3);
        assert_eq!(num_field(line, "best_ns").unwrap(), 1.0);
    }

    #[test]
    fn missing_fields_are_detected() {
        assert_eq!(str_field("{}", "group"), None);
        assert_eq!(num_field(r#"{"mean_ns": }"#, "mean_ns"), None);
    }

    fn rec(group: &str, id: &str, mean_ns: f64, best_ns: f64) -> Record {
        Record {
            group: group.into(),
            id: id.into(),
            mean_ns,
            best_ns,
        }
    }

    #[test]
    fn new_groups_are_tolerated_not_regressions() {
        // A record whose group exists only in the newer file must be
        // reported as `new` and must not trip the regression gate.
        let old = vec![rec("update_time", "algo2", 100.0, 95.0)];
        let new = vec![
            rec("update_time", "algo2", 101.0, 96.0),
            rec("batch_update_time", "algo2", 55.0, 50.0),
            rec("sharded_throughput", "algo2_shards4", 30.0, 28.0),
        ];
        let d = diff(&old, &new);
        assert!(!d.regressed);
        assert_eq!(d.added, 2);
        assert!(d.lines.iter().any(|l| l.contains("new")));
    }

    #[test]
    fn regression_requires_mean_and_best_to_agree() {
        // Mean blew the budget but the best sample held: contention
        // noise, not a code slowdown — reported as `noisy`, gate green.
        let old = vec![rec("g", "x", 100.0, 95.0)];
        let noisy = vec![rec("g", "x", 130.0, 97.0)];
        let d = diff(&old, &noisy);
        assert!(!d.regressed);
        assert!(d.lines.iter().any(|l| l.contains("noisy")));
        // Mean and best both slowed: a real regression.
        let slow = vec![rec("g", "x", 130.0, 120.0)];
        assert!(diff(&old, &slow).regressed);
        // Both within budget: flat.
        let ok = vec![rec("g", "x", 109.0, 104.0)];
        assert!(!diff(&old, &ok).regressed);
    }

    #[test]
    fn removed_benchmarks_are_reported_without_failing() {
        let old = vec![rec("g", "gone", 100.0, 90.0), rec("g", "kept", 100.0, 90.0)];
        let new = vec![rec("g", "kept", 90.0, 85.0)];
        let d = diff(&old, &new);
        assert!(!d.regressed);
        assert!(d.lines.iter().any(|l| l.contains("removed")));
    }
}
