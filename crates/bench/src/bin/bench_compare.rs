//! Diffs two BENCH_N.json files (the mini-criterion records emitted by
//! `scripts/bench.sh`) and prints per-benchmark speedup or regression.
//!
//! Usage: `bench_compare [old.json new.json]`
//! With no arguments, compares the two highest-numbered `BENCH_<N>.json`
//! files in the current directory (the benchmark-trajectory convention:
//! each perf PR appends the next `BENCH_N`).
//!
//! Exit code is 1 if any benchmark regressed by more than 10% — the
//! budget the repo's perf acceptance criteria allow — so CI or a
//! pre-merge check can gate on it.

use std::process::ExitCode;

/// One record of the flat JSON array `scripts/bench.sh` writes.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    group: String,
    id: String,
    mean_ns: f64,
}

/// Pulls `"key": <string>` out of a JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Pulls `"key": <number>` out of a JSON object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = line[line.find(&tag)? + tag.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the benchmark records out of a `scripts/bench.sh` JSON file.
/// The format is one object per line inside a flat array — a shape this
/// repo controls — so a line-oriented field scan is exact and keeps the
/// vendored serde stub out of the loop.
fn parse(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for line in text.lines() {
        if !line.trim_start().starts_with('{') {
            continue;
        }
        let (group, id, mean_ns) = match (
            str_field(line, "group"),
            str_field(line, "id"),
            num_field(line, "mean_ns"),
        ) {
            (Some(g), Some(i), Some(m)) => (g, i, m),
            _ => return Err(format!("{path}: malformed record: {line}")),
        };
        out.push(Record { group, id, mean_ns });
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok(out)
}

/// Finds the two highest-numbered BENCH_<N>.json files in `.`.
fn latest_pair() -> Option<(String, String)> {
    let mut numbered: Vec<(u64, String)> = std::fs::read_dir(".")
        .ok()?
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            let n: u64 = name
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((n, name))
        })
        .collect();
    numbered.sort_unstable();
    match numbered.len() {
        0 | 1 => None,
        n => Some((numbered[n - 2].1.clone(), numbered[n - 1].1.clone())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path) = match args.as_slice() {
        [a, b] => (a.clone(), b.clone()),
        [] => match latest_pair() {
            Some(pair) => pair,
            None => {
                eprintln!("bench_compare: need two BENCH_N.json files (or pass paths)");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: bench_compare [old.json new.json]");
            return ExitCode::FAILURE;
        }
    };
    let (old, new) = match (parse(&old_path), parse(&new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("# {old_path} -> {new_path}\n");
    println!(
        "{:<14} {:<16} {:>12} {:>12} {:>9}  verdict",
        "group", "id", "old mean", "new mean", "speedup"
    );
    let mut regressed = false;
    for n in &new {
        let Some(o) = old.iter().find(|o| o.group == n.group && o.id == n.id) else {
            println!(
                "{:<14} {:<16} {:>12} {:>12.0} {:>9}  new",
                n.group, n.id, "-", n.mean_ns, "-"
            );
            continue;
        };
        let speedup = o.mean_ns / n.mean_ns;
        let verdict = if speedup < 1.0 / 1.10 {
            regressed = true;
            "REGRESSION"
        } else if speedup > 1.10 {
            "faster"
        } else {
            "flat"
        };
        println!(
            "{:<14} {:<16} {:>12.0} {:>12.0} {:>8.2}x  {verdict}",
            n.group, n.id, o.mean_ns, n.mean_ns, speedup
        );
    }
    for o in &old {
        if !new.iter().any(|n| n.group == o.group && n.id == o.id) {
            println!(
                "{:<14} {:<16} {:>12.0} {:>12} {:>9}  removed",
                o.group, o.id, o.mean_ns, "-", "-"
            );
        }
    }
    if regressed {
        eprintln!("\nbench_compare: at least one benchmark regressed by more than 10%");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_lines() {
        let line = r#"  {"group": "update_time", "id": "algo2_optimal", "mean_ns": 57523745.3, "best_ns": 1.0, "samples": 3, "throughput_kind": "elements", "throughput": 2097152},"#;
        assert_eq!(str_field(line, "group").unwrap(), "update_time");
        assert_eq!(str_field(line, "id").unwrap(), "algo2_optimal");
        assert_eq!(num_field(line, "mean_ns").unwrap(), 57523745.3);
    }

    #[test]
    fn missing_fields_are_detected() {
        assert_eq!(str_field("{}", "group"), None);
        assert_eq!(num_field(r#"{"mean_ns": }"#, "mean_ns"), None);
    }
}
