//! Diffs two BENCH_N.json files (the mini-criterion records emitted by
//! `scripts/bench.sh`) and prints per-benchmark speedup or regression.
//!
//! Usage: `bench_compare [old.json new.json] [--control control.json]`
//! With no arguments, compares the two highest-numbered `BENCH_<N>.json`
//! files in the current directory (the benchmark-trajectory convention:
//! each perf PR appends the next `BENCH_N`).
//!
//! Exit code is 1 if any benchmark regressed by more than 10% — the
//! budget the repo's perf acceptance criteria allow — so CI or a
//! pre-merge check can gate on it.
//!
//! **What counts as a regression.** Records are snapshots from
//! whatever host recorded them, and the trajectory hosts are shared
//! single-vCPU boxes where scheduler contention inflates individual
//! samples by 2–10× (steal time only ever *adds* latency). The mean is
//! therefore contaminated noise-first, while the best-of-N sample is
//! the contention-robust floor — a real code slowdown shifts the floor
//! and the mean together, noise shifts only the mean. The gate flags a
//! benchmark only when **both** the mean ratio and the best ratio
//! exceed the 10% budget; the printed table shows both so a
//! mean-only drift is still visible as `noisy`.
//!
//! Ratios alone are also not enough at the bottom of the time scale:
//! consecutive records can come from different host steppings, and on
//! a sub-microsecond, allocation-bound benchmark the 10% budget is a
//! few tens of nanoseconds — smaller than the host-to-host variance of
//! a single malloc/free pair or a frequency-scaling step. A flagged
//! benchmark is therefore tolerated as `sub-floor` when the slowdown
//! is *both* small in absolute terms (best-of-N delta under 0.5 µs)
//! *and* small as a multiple (best at most 3× the old best) — host
//! constants drift by fractions, not multiples, so a 10 ns cached read
//! regressing to 500 ns still fails even though its absolute delta is
//! tiny, while a 900 ns alloc-bound roundtrip drifting by 200 ns does
//! not.
//!
//! Benchmarks (or whole groups) that exist only in the newer record are
//! *tolerated*: they print as `new` and never regress — a perf PR that
//! adds a bench group must not have to backfill history. Individual
//! benchmarks present only in the older record print as `removed`
//! without failing (ids get renamed), **but a whole gated group
//! disappearing fails the gate**: the trajectory groups
//! (`update_time`, `batch_update_time`, `sharded_throughput`,
//! `thread_scaling`, `query_time`, `merge`, `serialize`, `hot_query`,
//! `mixed_read_write`) are the repo's perf acceptance surface, and a
//! record that silently drops one would let any regression in it
//! through unmeasured.
//!
//! **Host metadata.** Records may carry `{"group": "_meta", "id": key,
//! "value": v}` lines (the mini-criterion `record_metadata` API); they
//! are facts about the recording host, not measurements, and never
//! diff as benchmarks. One is load-bearing: when both files record
//! `host_cores` and the values differ, the *scaling* groups
//! (`sharded_throughput`, `thread_scaling`) are excluded from the
//! regression check and printed as `skipped` — a 4-shard rate from a
//! 4-core box against one from a 1-core box measures the hardware, not
//! the code. The groups must still exist (the missing-group rule keeps
//! applying); only their ratios are ignored.
//!
//! **Control runs (`--control`).** Core count is the coarsest host fact;
//! the same box also drifts in plain scalar speed between recording
//! days (thermal and frequency state, co-tenant steal, microcode), and
//! a ratio against a number recorded on a *faster day* charges that
//! drift to the code under test. The A/A answer: re-run the **old
//! committed code** on the *new* host in the same session that records
//! the new file, and pass that record as `--control control.json`.
//! For every benchmark the control measures, the baseline side of the
//! comparison becomes the control's numbers — old code and new code
//! are then measured by the same host in the same state, which is the
//! only subtraction that isolates the code change. Re-based rows are
//! marked `*` in the verdict column; benchmarks absent from the
//! control keep their original baseline. The control is reproducible
//! by construction: it is generated from the committed baseline tree
//! (`git worktree add <dir> <baseline-rev>` and `scripts/bench.sh`
//! there), so a reviewer can regenerate it and check both directions —
//! the control must track the old record up to host drift, and the new
//! record up to the claimed code delta. A control committed as
//! `BENCH_<N>_CONTROL.json` next to `BENCH_<N>.json` is picked up
//! automatically whenever `BENCH_<N>.json` is the newer side (the
//! no-argument CI invocation included); `--control` overrides.

use std::process::ExitCode;

/// One record of the flat JSON array `scripts/bench.sh` writes.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    group: String,
    id: String,
    mean_ns: f64,
    best_ns: f64,
}

/// Pulls `"key": <string>` out of a JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Pulls `"key": <number>` out of a JSON object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = line[line.find(&tag)? + tag.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One file's contents: benchmark records plus host-metadata facts.
struct Recorded {
    records: Vec<Record>,
    /// `_meta` lines as `(key, value)`, e.g. `("host_cores", 1.0)`.
    meta: Vec<(String, f64)>,
}

impl Recorded {
    fn meta_value(&self, key: &str) -> Option<f64> {
        self.meta.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Parses the benchmark records out of a `scripts/bench.sh` JSON file.
/// The format is one object per line inside a flat array — a shape this
/// repo controls — so a line-oriented field scan is exact and keeps the
/// vendored serde stub out of the loop. `best_ns` falls back to
/// `mean_ns` for hand-built records that omit it. Lines in the `_meta`
/// group are host facts, split out instead of diffed.
fn parse(path: &str) -> Result<Recorded, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut records = Vec::new();
    let mut meta = Vec::new();
    for line in text.lines() {
        if !line.trim_start().starts_with('{') {
            continue;
        }
        let (group, id) = match (str_field(line, "group"), str_field(line, "id")) {
            (Some(g), Some(i)) => (g, i),
            _ => return Err(format!("{path}: malformed record: {line}")),
        };
        if group == "_meta" {
            let value = num_field(line, "value")
                .ok_or_else(|| format!("{path}: malformed metadata: {line}"))?;
            meta.push((id, value));
            continue;
        }
        let mean_ns = num_field(line, "mean_ns")
            .ok_or_else(|| format!("{path}: malformed record: {line}"))?;
        let best_ns = num_field(line, "best_ns").unwrap_or(mean_ns);
        records.push(Record {
            group,
            id,
            mean_ns,
            best_ns,
        });
    }
    if records.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok(Recorded { records, meta })
}

/// Finds the two highest-numbered `BENCH_<N>.json` files in `.`.
fn latest_pair() -> Option<(String, String)> {
    let mut numbered: Vec<(u64, String)> = std::fs::read_dir(".")
        .ok()?
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            let n: u64 = name
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((n, name))
        })
        .collect();
    numbered.sort_unstable();
    match numbered.len() {
        0 | 1 => None,
        n => Some((numbered[n - 2].1.clone(), numbered[n - 1].1.clone())),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--control <file>` may ride along with either positional form.
    let control_path = match args.iter().position(|a| a == "--control") {
        Some(i) if i + 1 < args.len() => {
            let path = args.remove(i + 1);
            args.remove(i);
            Some(path)
        }
        Some(_) => {
            eprintln!("usage: bench_compare [old.json new.json] [--control control.json]");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let (old_path, new_path) = match args.as_slice() {
        [a, b] => (a.clone(), b.clone()),
        [] => match latest_pair() {
            Some(pair) => pair,
            None => {
                eprintln!("bench_compare: need two BENCH_N.json files (or pass paths)");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: bench_compare [old.json new.json] [--control control.json]");
            return ExitCode::FAILURE;
        }
    };
    // A control committed next to the newer record is part of it:
    // `BENCH_6.json` picks up `BENCH_6_CONTROL.json` automatically, so
    // the no-argument CI invocation applies it without plumbing.
    let control_path = control_path.or_else(|| {
        let candidate = format!("{}_CONTROL.json", new_path.strip_suffix(".json")?);
        std::fs::metadata(&candidate).ok().map(|_| candidate)
    });
    let (old, new) = match (parse(&old_path), parse(&new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::FAILURE;
        }
    };
    let control: Vec<Record> = match &control_path {
        Some(p) => match parse(p) {
            Ok(c) => c.records,
            Err(e) => {
                eprintln!("bench_compare: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Vec::new(),
    };

    // Shard-scaling rates are only comparable between same-shaped
    // hosts; when both records declare a core count and they differ,
    // the scaling groups drop out of the gate (see module docs).
    let cores = (old.meta_value("host_cores"), new.meta_value("host_cores"));
    let skip_scaling = matches!(cores, (Some(a), Some(b)) if a != b);

    println!("# {old_path} -> {new_path}\n");
    if let Some(p) = &control_path {
        println!(
            "control run {p}: {} baseline record(s) re-based to this \
             host's A/A measurement (marked *)\n",
            control.len()
        );
    }
    if skip_scaling {
        let (a, b) = (cores.0.unwrap(), cores.1.unwrap());
        println!(
            "host core count changed ({a:.0} -> {b:.0}): scaling groups \
             ({}) compared as `skipped`\n",
            SCALING_GROUPS.join(", ")
        );
    }
    println!(
        "{:<20} {:<18} {:>12} {:>12} {:>9} {:>9}  verdict",
        "group", "id", "old mean", "new mean", "mean", "best"
    );
    let diff = diff(&old.records, &new.records, skip_scaling, &control);
    for line in &diff.lines {
        println!("{line}");
    }
    if diff.added > 0 {
        println!(
            "\n{} benchmark(s) have no baseline in {old_path} (tolerated as new)",
            diff.added
        );
    }
    if diff.regressed {
        eprintln!("\nbench_compare: at least one benchmark regressed by more than 10%");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Result of comparing two record sets.
struct Diff {
    lines: Vec<String>,
    regressed: bool,
    /// Benchmarks present only in the newer record (tolerated).
    added: usize,
}

/// The regression budget: fail at more than 10% slower.
const BUDGET: f64 = 1.10;

/// Absolute slowdown floor (ns): a flagged benchmark whose best-of-N
/// delta is under this — and whose best ratio is under
/// [`SUB_FLOOR_MAX_RATIO`] — is tolerated as host-constant drift (see
/// module docs — below this, cross-host allocator/frequency constants
/// swamp the relative budget).
const ABS_FLOOR_NS: f64 = 500.0;

/// The sub-floor tolerance never excuses a slowdown of more than this
/// multiple, however small in absolute terms: host constants drift by
/// fractions, real regressions on nanosecond benches come as multiples.
const SUB_FLOOR_MAX_RATIO: f64 = 3.0;

/// Groups the gate refuses to lose: if one of these exists in the old
/// record, the new record must still measure it (see module docs).
const GATED_GROUPS: [&str; 12] = [
    "update_time",
    "batch_update_time",
    "sharded_throughput",
    "thread_scaling",
    "query_time",
    "merge",
    "serialize",
    "hot_query",
    "mixed_read_write",
    "serve_throughput",
    "dyadic",
    "wal",
];

/// Groups whose ratios measure shard scaling and therefore only compare
/// between hosts with the same core count (see module docs).
const SCALING_GROUPS: [&str; 2] = ["sharded_throughput", "thread_scaling"];

/// Compares `new` against `old` per (group, id). Only benchmarks present
/// in *both* can regress, and only when the mean ratio **and** the
/// best-of-N ratio both blow the budget (see module docs); new and
/// removed ones are reported but never fail the gate. With
/// `skip_scaling`, the [`SCALING_GROUPS`] are printed but exempt from
/// the regression check (cross-host core-count mismatch). Benchmarks
/// that `control` re-measured (old code, new host) compare against the
/// control's numbers instead of `old`'s — in both directions, so a
/// control *faster* than the old record also tightens the gate — and
/// their verdicts carry a `*` (see module docs, "Control runs").
fn diff(old: &[Record], new: &[Record], skip_scaling: bool, control: &[Record]) -> Diff {
    let mut lines = Vec::new();
    let mut regressed = false;
    let mut added = 0usize;
    for n in new {
        let Some(o) = old.iter().find(|o| o.group == n.group && o.id == n.id) else {
            added += 1;
            lines.push(format!(
                "{:<20} {:<18} {:>12} {:>12.0} {:>9} {:>9}  new",
                n.group, n.id, "-", n.mean_ns, "-", "-"
            ));
            continue;
        };
        let rebased = control.iter().find(|c| c.group == n.group && c.id == n.id);
        let o = rebased.unwrap_or(o);
        let mark = if rebased.is_some() { "*" } else { "" };
        if skip_scaling && SCALING_GROUPS.contains(&n.group.as_str()) {
            lines.push(format!(
                "{:<20} {:<18} {:>12.0} {:>12.0} {:>9} {:>9}  skipped",
                n.group, n.id, o.mean_ns, n.mean_ns, "-", "-"
            ));
            continue;
        }
        let mean_speedup = o.mean_ns / n.mean_ns;
        let best_speedup = o.best_ns / n.best_ns;
        let verdict = if mean_speedup < 1.0 / BUDGET && best_speedup < 1.0 / BUDGET {
            let small_delta = n.best_ns - o.best_ns <= ABS_FLOOR_NS;
            let small_ratio = n.best_ns <= SUB_FLOOR_MAX_RATIO * o.best_ns;
            if small_delta && small_ratio {
                "sub-floor"
            } else {
                regressed = true;
                "REGRESSION"
            }
        } else if mean_speedup < 1.0 / BUDGET || best_speedup < 1.0 / BUDGET {
            "noisy"
        } else if mean_speedup > BUDGET {
            "faster"
        } else {
            "flat"
        };
        lines.push(format!(
            "{:<20} {:<18} {:>12.0} {:>12.0} {:>8.2}x {:>8.2}x  {verdict}{mark}",
            n.group, n.id, o.mean_ns, n.mean_ns, mean_speedup, best_speedup
        ));
    }
    for o in old {
        if !new.iter().any(|n| n.group == o.group && n.id == o.id) {
            lines.push(format!(
                "{:<20} {:<18} {:>12.0} {:>12} {:>9} {:>9}  removed",
                o.group, o.id, o.mean_ns, "-", "-", "-"
            ));
        }
    }
    // A gated group measured before but absent now is a gate failure:
    // the perf surface shrank, which is how regressions go unmeasured.
    for g in GATED_GROUPS {
        if old.iter().any(|o| o.group == g) && !new.iter().any(|n| n.group == g) {
            regressed = true;
            lines.push(format!(
                "{g:<20} {:<18} {:>12} {:>12} {:>9} {:>9}  GROUP MISSING",
                "(whole group)", "-", "-", "-", "-"
            ));
        }
    }
    Diff {
        lines,
        regressed,
        added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_lines() {
        let line = r#"  {"group": "update_time", "id": "algo2_optimal", "mean_ns": 57523745.3, "best_ns": 1.0, "samples": 3, "throughput_kind": "elements", "throughput": 2097152},"#;
        assert_eq!(str_field(line, "group").unwrap(), "update_time");
        assert_eq!(str_field(line, "id").unwrap(), "algo2_optimal");
        assert_eq!(num_field(line, "mean_ns").unwrap(), 57523745.3);
        assert_eq!(num_field(line, "best_ns").unwrap(), 1.0);
    }

    #[test]
    fn missing_fields_are_detected() {
        assert_eq!(str_field("{}", "group"), None);
        assert_eq!(num_field(r#"{"mean_ns": }"#, "mean_ns"), None);
    }

    fn rec(group: &str, id: &str, mean_ns: f64, best_ns: f64) -> Record {
        Record {
            group: group.into(),
            id: id.into(),
            mean_ns,
            best_ns,
        }
    }

    #[test]
    fn new_groups_are_tolerated_not_regressions() {
        // A record whose group exists only in the newer file must be
        // reported as `new` and must not trip the regression gate.
        let old = vec![rec("update_time", "algo2", 100.0, 95.0)];
        let new = vec![
            rec("update_time", "algo2", 101.0, 96.0),
            rec("batch_update_time", "algo2", 55.0, 50.0),
            rec("sharded_throughput", "algo2_shards4", 30.0, 28.0),
        ];
        let d = diff(&old, &new, false, &[]);
        assert!(!d.regressed);
        assert_eq!(d.added, 2);
        assert!(d.lines.iter().any(|l| l.contains("new")));
    }

    #[test]
    fn regression_requires_mean_and_best_to_agree() {
        // Nanosecond-scale ratios alone never fail (sub-floor rule);
        // use microsecond magnitudes so the absolute floor is cleared.
        let old = vec![rec("g", "x", 100_000.0, 95_000.0)];
        // Mean blew the budget but the best sample held: contention
        // noise, not a code slowdown — reported as `noisy`, gate green.
        let noisy = vec![rec("g", "x", 130_000.0, 97_000.0)];
        let d = diff(&old, &noisy, false, &[]);
        assert!(!d.regressed);
        assert!(d.lines.iter().any(|l| l.contains("noisy")));
        // Mean and best both slowed: a real regression.
        let slow = vec![rec("g", "x", 130_000.0, 120_000.0)];
        assert!(diff(&old, &slow, false, &[]).regressed);
        // Both within budget: flat.
        let ok = vec![rec("g", "x", 109_000.0, 104_000.0)];
        assert!(!diff(&old, &ok, false, &[]).regressed);
    }

    #[test]
    fn nanosecond_ratio_drift_is_sub_floor_not_regression() {
        // A 900 ns bench slowing by 200 ns blows the 10% budget on both
        // statistics, but 200 ns is below the cross-host resolution
        // floor: tolerated, visibly, as `sub-floor`.
        let old = vec![rec("serialize", "tiny", 918.0, 865.0)];
        let drift = vec![rec("serialize", "tiny", 1124.0, 1071.0)];
        let d = diff(&old, &drift, false, &[]);
        assert!(!d.regressed);
        assert!(d.lines.iter().any(|l| l.contains("sub-floor")));
        // The same ratios with real time behind them still fail.
        let old_big = vec![rec("serialize", "big", 918_000.0, 865_000.0)];
        let slow_big = vec![rec("serialize", "big", 1_124_000.0, 1_071_000.0)];
        assert!(diff(&old_big, &slow_big, false, &[]).regressed);
        // And a tiny absolute delta never excuses a multiple-scale
        // slowdown: a 10 ns cached read regressing to 480 ns (well
        // under the absolute floor) is a 48x regression, not drift.
        let old_ns = vec![rec("hot_query", "cached", 12.0, 10.0)];
        let blown_ns = vec![rec("hot_query", "cached", 500.0, 480.0)];
        assert!(diff(&old_ns, &blown_ns, false, &[]).regressed);
        // Within 3x and under the floor: tolerated (host constant).
        let wobble_ns = vec![rec("hot_query", "cached", 26.0, 24.0)];
        assert!(!diff(&old_ns, &wobble_ns, false, &[]).regressed);
    }

    #[test]
    fn core_count_mismatch_skips_scaling_groups_only() {
        // A genuine 2x slowdown in a scaling group is excused when the
        // recorded core counts differ (the hardware changed) ...
        let old = vec![
            rec("thread_scaling", "algo2_par_shards4", 50_000.0, 48_000.0),
            rec("update_time", "algo2", 100_000.0, 95_000.0),
        ];
        let new = vec![
            rec("thread_scaling", "algo2_par_shards4", 100_000.0, 98_000.0),
            rec("update_time", "algo2", 101_000.0, 96_000.0),
        ];
        let d = diff(&old, &new, true, &[]);
        assert!(!d.regressed);
        assert!(d.lines.iter().any(|l| l.contains("skipped")));
        // ... but the same mismatch never excuses a non-scaling group.
        let new_bad = vec![
            rec("thread_scaling", "algo2_par_shards4", 50_000.0, 48_000.0),
            rec("update_time", "algo2", 200_000.0, 190_000.0),
        ];
        assert!(diff(&old, &new_bad, true, &[]).regressed);
        // And with matching hosts the scaling slowdown counts again.
        assert!(diff(&old, &new, false, &[]).regressed);
    }

    #[test]
    fn control_rebases_baselines_in_both_directions() {
        // The old record was made on a faster day: identical code now
        // runs at 270 µs, and the new code matches that. Without the
        // control the host drift reads as a code regression; with it,
        // the A/A re-measurement becomes the baseline and the row is
        // flat (and marked). A benchmark the control did not re-measure
        // keeps its original baseline.
        let old = vec![
            rec("update_time", "mg", 240_000.0, 220_000.0),
            rec("update_time", "algo2", 100_000.0, 95_000.0),
        ];
        let new = vec![
            rec("update_time", "mg", 275_000.0, 270_000.0),
            rec("update_time", "algo2", 99_000.0, 94_000.0),
        ];
        let control = vec![rec("update_time", "mg", 276_000.0, 271_000.0)];
        assert!(diff(&old, &new, false, &[]).regressed);
        let d = diff(&old, &new, false, &control);
        assert!(!d.regressed);
        assert!(d.lines.iter().any(|l| l.contains("flat*")));
        assert!(d.lines.iter().any(|l| l.contains("276000")));
        // The re-base is not a one-way ratchet: a control *faster* than
        // the old record tightens the gate, so a new-code time that
        // looked flat against a slow old baseline fails against the
        // same code's honest speed on this host.
        let fast_control = vec![rec("update_time", "mg", 180_000.0, 170_000.0)];
        assert!(diff(&old, &new, false, &fast_control).regressed);
    }

    #[test]
    fn meta_lines_parse_as_facts_not_records() {
        let dir = std::env::temp_dir().join("bench_compare_meta_test.json");
        let path = dir.to_str().unwrap();
        std::fs::write(
            path,
            "[\n  {\"group\": \"update_time\", \"id\": \"algo2\", \"mean_ns\": 10.0, \"best_ns\": 9.0, \"samples\": 3, \"throughput_kind\": null, \"throughput\": null},\n  {\"group\": \"_meta\", \"id\": \"host_cores\", \"value\": 4}\n]\n",
        )
        .unwrap();
        let parsed = parse(path).unwrap();
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(parsed.meta_value("host_cores"), Some(4.0));
        assert_eq!(parsed.meta_value("absent"), None);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn removed_benchmarks_are_reported_without_failing() {
        let old = vec![rec("g", "gone", 100.0, 90.0), rec("g", "kept", 100.0, 90.0)];
        let new = vec![rec("g", "kept", 90.0, 85.0)];
        let d = diff(&old, &new, false, &[]);
        assert!(!d.regressed);
        assert!(d.lines.iter().any(|l| l.contains("removed")));
    }

    #[test]
    fn dropping_a_gated_group_fails_the_gate() {
        // Renaming ids inside a gated group is tolerated, but losing the
        // whole group is not — that is how regressions go unmeasured.
        let old = vec![
            rec("query_time", "algo2_n16", 100.0, 90.0),
            rec("update_time", "algo2", 100.0, 90.0),
        ];
        let renamed = vec![
            rec("query_time", "algo2_small", 95.0, 88.0),
            rec("update_time", "algo2", 100.0, 90.0),
        ];
        assert!(!diff(&old, &renamed, false, &[]).regressed);
        let dropped = vec![rec("update_time", "algo2", 100.0, 90.0)];
        let d = diff(&old, &dropped, false, &[]);
        assert!(d.regressed);
        assert!(d.lines.iter().any(|l| l.contains("GROUP MISSING")));
        // Ungated (experimental) groups may come and go freely.
        let old_ungated = vec![rec("scratch", "x", 100.0, 90.0)];
        assert!(!diff(&old_ungated, &dropped, false, &[]).regressed);
    }
}
