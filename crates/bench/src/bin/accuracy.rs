//! Experiment E11: Definition-1 guarantee Monte Carlo.
//!
//! For each algorithm, runs many independent trials on planted streams
//! with items straddling the φ / (φ−ε) thresholds and measures:
//!
//! * **recall** — fraction of trials reporting every item with `f > φm`,
//! * **false positives** — fraction of trials reporting an item with
//!   `f ≤ (φ−ε)m`,
//! * **max |f̃−f|/m** — worst estimate error among reported items,
//! * **violation rate** — trials violating any part of the guarantee;
//!   the paper allows δ.
//!
//! Usage: `cargo run --release -p hh-bench --bin accuracy [trials]`

use hh_baselines::{
    CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SampleAndHold, SpaceSaving,
    StickySampling,
};
use hh_bench::{planted_stream, Table};
use hh_core::{HeavyHitters, HhParams, OptimalListHh, Report, SimpleListHh, StreamSummary};
use hh_streams::ExactCounts;

const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;
const M: u64 = 300_000;

/// Planted design: two must-report items (30%, 21%), one forbidden item
/// at exactly (φ−ε)m = 15%, and background.
const HEAVY: [(u64, f64); 3] = [(1, 0.30), (2, 0.21), (3, 0.15)];
const MUST: [u64; 2] = [1, 2];
const FORBIDDEN: u64 = 3;

struct TrialResult {
    recall_ok: bool,
    fp_ok: bool,
    max_err: f64,
}

fn score(report: &Report, oracle: &ExactCounts) -> TrialResult {
    let recall_ok = MUST.iter().all(|&i| report.contains(i));
    let fp_ok = !report.contains(FORBIDDEN);
    let max_err = report
        .entries()
        .iter()
        .map(|e| (e.count - oracle.freq(e.item) as f64).abs() / M as f64)
        .fold(0.0f64, f64::max);
    TrialResult {
        recall_ok,
        fp_ok,
        max_err,
    }
}

fn run_algorithm<F>(name: &str, trials: u64, t: &mut Table, mut make_and_run: F)
where
    F: FnMut(&[u64], u64) -> Report,
{
    let mut recall = 0u64;
    let mut fp = 0u64;
    let mut violations = 0u64;
    let mut worst_err = 0.0f64;
    for trial in 0..trials {
        let stream = planted_stream(M, &HEAVY, 0xACC0 + trial);
        let oracle = ExactCounts::from_stream(&stream);
        let report = make_and_run(&stream, trial);
        let r = score(&report, &oracle);
        recall += u64::from(r.recall_ok);
        fp += u64::from(!r.fp_ok);
        worst_err = worst_err.max(r.max_err);
        if !r.recall_ok || !r.fp_ok || r.max_err > EPS {
            violations += 1;
        }
    }
    t.row(vec![
        name.into(),
        (recall as f64 / trials as f64).into(),
        (fp as f64 / trials as f64).into(),
        worst_err.into(),
        (violations as f64 / trials as f64).into(),
    ]);
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let n = 1u64 << 40;

    println!("# E11: Definition-1 guarantees, {trials} trials");
    println!(
        "\neps={EPS}, phi={PHI}, delta={DELTA}, m={M}; planted 30%/21% (must\n\
         report) and 15% = (phi-eps)m (must suppress). `violation rate` must\n\
         stay at or below delta = {DELTA}.\n"
    );
    let mut t = Table::new(
        "guarantee Monte Carlo",
        &[
            "algorithm",
            "recall",
            "false-pos rate",
            "worst |err|/m",
            "violation rate",
        ],
    );

    run_algorithm("Algorithm 1 (simple)", trials, &mut t, |stream, seed| {
        let mut a = SimpleListHh::new(params, n, M, seed).unwrap();
        a.insert_all(stream);
        a.report()
    });
    run_algorithm("Algorithm 2 (optimal)", trials, &mut t, |stream, seed| {
        let mut a = OptimalListHh::new(params, n, M, seed).unwrap();
        a.insert_all(stream);
        a.report()
    });
    run_algorithm("Misra-Gries", trials, &mut t, |stream, _| {
        let mut a = MisraGriesBaseline::new(EPS, PHI, n);
        a.insert_all(stream);
        a.report()
    });
    run_algorithm("Space-Saving", trials, &mut t, |stream, _| {
        let mut a = SpaceSaving::new(EPS, PHI, n);
        a.insert_all(stream);
        a.report()
    });
    run_algorithm("Lossy Counting", trials, &mut t, |stream, _| {
        let mut a = LossyCounting::new(EPS, PHI, n);
        a.insert_all(stream);
        a.report()
    });
    run_algorithm("Sticky Sampling", trials, &mut t, |stream, seed| {
        let mut a = StickySampling::new(EPS, PHI, DELTA, n, seed);
        a.insert_all(stream);
        a.report()
    });
    run_algorithm("Count-Min", trials, &mut t, |stream, seed| {
        let mut a = CountMin::new(EPS, PHI, DELTA, n, seed);
        a.insert_all(stream);
        a.report()
    });
    run_algorithm("CountSketch", trials, &mut t, |stream, seed| {
        let mut a = CountSketch::new(EPS, PHI, DELTA, n, seed);
        a.insert_all(stream);
        a.report()
    });
    run_algorithm("Sample-and-Hold", trials, &mut t, |stream, seed| {
        let mut a = SampleAndHold::new(EPS, PHI, DELTA, n, M, seed);
        a.insert_all(stream);
        a.report()
    });

    t.print();
}
