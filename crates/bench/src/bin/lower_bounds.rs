//! Experiment E8: execute the §4 lower-bound reductions end to end.
//!
//! For each reduction: run many random instances with the *real*
//! streaming algorithm as Alice's message, and report the decode success
//! rate (the paper's protocols succeed with probability ≥ 1 − δ), the
//! mean message length, the source problem's communication floor, and
//! their ratio (which must stay ≥ 1 — the operational content of the
//! lower bound).
//!
//! Usage: `cargo run --release -p hh-bench --bin lower_bounds [trials]`

use hh_bench::Table;
use hh_lower_bounds::reductions::{
    borda_perm, greater_than, hh_indexing, max_indexing, maximin_distance, min_indexing,
};
use hh_lower_bounds::{EpsPermInstance, GreaterThanInstance, IndexingInstance, ReductionOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn summarize(name: &str, outcomes: &[ReductionOutcome], t: &mut Table) {
    let trials = outcomes.len() as f64;
    let rate = outcomes.iter().filter(|o| o.success).count() as f64 / trials;
    let mean_msg = outcomes.iter().map(|o| o.message_bits as f64).sum::<f64>() / trials;
    let mean_floor = outcomes.iter().map(|o| o.lower_bound_units).sum::<f64>() / trials;
    t.row(vec![
        name.into(),
        (rate).into(),
        hh_bench::Cell::Float(mean_msg, 0),
        hh_bench::Cell::Float(mean_floor, 0),
        (mean_msg / mean_floor.max(1.0)).into(),
    ]);
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    println!("# E8: lower-bound reductions, {trials} trials each\n");
    let mut t = Table::new(
        "reduction outcomes",
        &[
            "reduction (theorem)",
            "success rate",
            "mean msg bits",
            "floor units",
            "msg/floor",
        ],
    );

    let outs: Vec<ReductionOutcome> = (0..trials)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s);
            let inst = IndexingInstance::random(8, 32, &mut rng);
            hh_indexing::run(&inst, 600, 1200, s)
        })
        .collect();
    summarize("Thm 9: Indexing -> HH", &outs, &mut t);

    let outs: Vec<ReductionOutcome> = (0..trials)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s ^ 0x10);
            let inst = IndexingInstance::random(16, 16, &mut rng);
            max_indexing::run(&inst, 500, s)
        })
        .collect();
    summarize("Thm 10: Indexing -> Maximum", &outs, &mut t);

    let outs: Vec<ReductionOutcome> = (0..trials)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s ^ 0x11);
            let inst = IndexingInstance::random(2, 25, &mut rng);
            min_indexing::run(&inst, s)
        })
        .collect();
    summarize("Thm 11: Indexing -> Minimum", &outs, &mut t);

    let outs: Vec<ReductionOutcome> = (0..trials)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s ^ 0x12);
            let inst = EpsPermInstance::random(32, 8, &mut rng);
            borda_perm::run(&inst, s)
        })
        .collect();
    summarize("Thm 12: eps-Perm -> Borda", &outs, &mut t);

    let outs: Vec<ReductionOutcome> = (0..trials)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s ^ 0x13);
            let inst = maximin_distance::DistanceInstance::random(64, 7, &mut rng);
            maximin_distance::run(&inst, 3, s)
        })
        .collect();
    summarize("Thm 13: Indexing -> Maximin", &outs, &mut t);

    let outs: Vec<ReductionOutcome> = (0..trials.min(25))
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s ^ 0x14);
            let inst = GreaterThanInstance::random(14, &mut rng);
            greater_than::run(&inst, 14, s)
        })
        .collect();
    summarize("Thm 14: Greater-Than -> loglog m", &outs, &mut t);

    t.print();
    println!(
        "All success rates must clear 1 - delta = 0.9; msg/floor >= 1 is the\n\
         operational statement of the lower bound (an algorithm beating the\n\
         floor would beat the communication complexity of the source problem)."
    );
}
