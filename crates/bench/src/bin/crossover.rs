//! Experiment E7: the paper's algorithms against the six baselines.
//!
//! Four views:
//! 1. **Space vs log n** — the crossover study. The prior art pays
//!    `Θ(ε⁻¹(log n + log m))` bits; Theorems 1 and 2 pay `φ⁻¹ log n`
//!    only. As the universe grows, the paper's algorithms must win, and
//!    the table locates the crossover.
//! 2. **Accuracy on a Zipf stream** — recall/precision parity check at
//!    equal (ε, φ), confirming the space win is not bought with accuracy.
//! 3. **Update throughput** — the space/time tradeoff between the two
//!    paper algorithms and the Misra–Gries baseline on the E6 workload.
//!    Since the PR-2 hot-path rebuild (bit-budgeted RNG, multiply-shift
//!    repetition hashing, integer epochs, deferred accounting — see
//!    DESIGN.md), both algorithms run in the sampled regime the paper's
//!    O(1)-amortized analysis describes, so the old "optimal space costs
//!    80× in update time" artifact is gone: the remaining gap is the
//!    constant factor of the R-repetition counting machinery.
//! 4. **Shard-and-merge throughput** — the mergeable-summaries extension
//!    (S19): wall-clock speedup of sharded Misra–Gries over 1..8 threads.
//!
//! Usage: `cargo run --release -p hh-bench --bin crossover`

use hh_baselines::{
    shard_and_merge, CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving,
    StickySampling,
};
use hh_bench::{zipf_stream, Table};
use hh_core::{HeavyHitters, HhParams, OptimalListHh, SimpleListHh, StreamSummary};
use hh_space::SpaceUsage;
use hh_streams::ExactCounts;
use std::time::Instant;

const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;

fn space_vs_log_n() {
    let m = 1u64 << 21;
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut t = Table::new(
        "E7a - model bits vs universe size (m = 2^21, eps = 0.05, phi = 0.2; 30 planted 3% items keep tables full)",
        &[
            "log2 n", "algo1", "algo2", "misra-gries", "space-saving", "lossy", "sticky",
            "count-min", "countsketch",
        ],
    );
    let mut series: Vec<(u32, Vec<u64>)> = Vec::new();
    for log_n in [16u32, 24, 32, 48, 60] {
        let n = 1u64 << log_n;
        // The same distribution at every n (so only the id width moves):
        // 30 items at 3% each keep every id-storing table at capacity,
        // plus a light tail. Ids fit the smallest universe.
        let stream = {
            let mut counts: Vec<(u64, u64)> = (0..30u64).map(|i| (i, m * 3 / 100)).collect();
            let used: u64 = counts.iter().map(|&(_, c)| c).sum();
            let light = 4096u64;
            for j in 0..light {
                counts.push((1000 + j, (m - used) / light));
            }
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
            hh_streams::arrange(&counts, hh_streams::OrderPolicy::Shuffled, &mut rng)
        };
        let mut a1 = SimpleListHh::new(params, n, m, 1).unwrap();
        let mut a2 = OptimalListHh::new(params, n, m, 2).unwrap();
        let mut mg = MisraGriesBaseline::new(EPS, PHI, n);
        let mut ss = SpaceSaving::new(EPS, PHI, n);
        let mut lc = LossyCounting::new(EPS, PHI, n);
        let mut st = StickySampling::new(EPS, PHI, DELTA, n, 3);
        let mut cm = CountMin::new(EPS, PHI, DELTA, n, 4);
        let mut cs = CountSketch::new(EPS, PHI, DELTA, n, 5);
        for &x in &stream {
            a1.insert(x);
            a2.insert(x);
            mg.insert(x);
            ss.insert(x);
            lc.insert(x);
            st.insert(x);
            cm.insert(x);
            cs.insert(x);
        }
        let bits = vec![
            a1.model_bits(),
            a2.model_bits(),
            mg.model_bits(),
            ss.model_bits(),
            lc.model_bits(),
            st.model_bits(),
            cm.model_bits(),
            cs.model_bits(),
        ];
        let mut row: Vec<hh_bench::Cell> = vec![u64::from(log_n).into()];
        row.extend(bits.iter().map(|&b| hh_bench::Cell::Int(b)));
        t.row(row);
        series.push((log_n, bits));
    }
    t.print();

    // Slope analysis: bits added per unit of log2 n, least-squares over
    // the sweep. The paper's algorithms only pay ids in the phi^-1 term
    // (about 1/phi = 5 id slots here); Misra-Gries-style baselines pay
    // ~2/eps = 40 id slots, so their slope must be ~8x steeper.
    let names = [
        "algo1",
        "algo2",
        "misra-gries",
        "space-saving",
        "lossy",
        "sticky",
        "count-min",
        "countsketch",
    ];
    let mut s = Table::new(
        "E7a slopes - bits per extra bit of log2 n (least squares)",
        &["algorithm", "slope", "ids paying log n (approx)"],
    );
    for (idx, name) in names.iter().enumerate() {
        let xs: Vec<f64> = series.iter().map(|&(l, _)| l as f64).collect();
        let ys: Vec<f64> = series.iter().map(|(_, b)| b[idx] as f64).collect();
        let xm = xs.iter().sum::<f64>() / xs.len() as f64;
        let ym = ys.iter().sum::<f64>() / ys.len() as f64;
        let slope = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - xm) * (y - ym))
            .sum::<f64>()
            / xs.iter().map(|x| (x - xm) * (x - xm)).sum::<f64>();
        s.row(vec![
            (*name).into(),
            hh_bench::Cell::Float(slope, 1),
            hh_bench::Cell::Float(slope.max(0.0), 0),
        ]);
    }
    s.print();
    println!(
        "The paper's win: algo2 pays only its ~2/phi = 10 candidate ids per\n\
         log-n bit and algo1 only its ~1/phi T2 ids, while the id-storing\n\
         baselines (Misra-Gries, lossy, sticky) pay their full Theta(1/eps)\n\
         tables. Count-Min/CountSketch appear flat here because they defer\n\
         ids to a small candidate set - their weakness is the eps^-2-width\n\
         counter matrix visible in the absolute numbers.\n"
    );
}

fn accuracy_on_zipf() {
    let m = 1usize << 20;
    let n = 1u64 << 32;
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let stream = zipf_stream(m, n, 1.25, 11);
    let oracle = ExactCounts::from_stream(&stream);
    let truth: Vec<u64> = oracle.heavy_hitters(PHI).iter().map(|&(i, _)| i).collect();
    let forbidden: std::collections::HashSet<u64> =
        oracle.forbidden(PHI, EPS).into_iter().collect();

    let mut t = Table::new(
        "E7b - accuracy parity on Zipf(1.25), m = 2^20 (recall over true HH set / forbidden items reported)",
        &["algorithm", "true HH", "found", "forbidden reported", "model bits"],
    );
    let mut run = |name: &str, report: hh_core::Report, bits: u64| {
        let found = truth.iter().filter(|&&i| report.contains(i)).count();
        let bad = report
            .entries()
            .iter()
            .filter(|e| forbidden.contains(&e.item))
            .count();
        t.row(vec![
            name.into(),
            truth.len().into(),
            found.into(),
            bad.into(),
            bits.into(),
        ]);
    };

    let mut a1 = SimpleListHh::new(params, n, m as u64, 21).unwrap();
    a1.insert_all(&stream);
    run("algo1", a1.report(), a1.model_bits());
    let mut a2 = OptimalListHh::new(params, n, m as u64, 22).unwrap();
    a2.insert_all(&stream);
    run("algo2", a2.report(), a2.model_bits());
    let mut mg = MisraGriesBaseline::new(EPS, PHI, n);
    mg.insert_all(&stream);
    run("misra-gries", mg.report(), mg.model_bits());
    let mut ss = SpaceSaving::new(EPS, PHI, n);
    ss.insert_all(&stream);
    run("space-saving", ss.report(), ss.model_bits());
    let mut cm = CountMin::new(EPS, PHI, DELTA, n, 23);
    cm.insert_all(&stream);
    run("count-min", cm.report(), cm.model_bits());
    let mut cs = CountSketch::new(EPS, PHI, DELTA, n, 24);
    cs.insert_all(&stream);
    run("countsketch", cs.report(), cs.model_bits());
    t.print();
}

fn update_time_tradeoff() {
    // The E6 workload (Zipf(1.2), m = 2^21): wall-clock insert throughput
    // next to the model bits each algorithm holds at stream end — the
    // space/time tradeoff in one table.
    let m = 1usize << 21;
    let n = 1u64 << 32;
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let stream = zipf_stream(m, n, 1.2, 7);
    let mut t = Table::new(
        "E7c - update time vs space on the E6 workload (Zipf 1.2, m = 2^21)",
        &["algorithm", "ns/item", "Melem/s", "model bits"],
    );
    let mut row = |name: &str, ns_per_item: f64, bits: u64| {
        t.row(vec![
            name.into(),
            hh_bench::Cell::Float(ns_per_item, 1),
            hh_bench::Cell::Float(1e3 / ns_per_item, 1),
            bits.into(),
        ]);
    };
    // Two timed repetitions each; report the better (first run warms the
    // stream and tables into cache).
    let mut best_a1 = f64::MAX;
    let mut bits_a1 = 0;
    let mut best_a2 = f64::MAX;
    let mut bits_a2 = 0;
    let mut best_mg = f64::MAX;
    let mut bits_mg = 0;
    for _ in 0..2 {
        let start = Instant::now();
        let mut a1 = SimpleListHh::new(params, n, m as u64, 1).unwrap();
        a1.insert_all(&stream);
        best_a1 = best_a1.min(start.elapsed().as_secs_f64() * 1e9 / m as f64);
        bits_a1 = a1.model_bits();

        let start = Instant::now();
        let mut a2 = OptimalListHh::new(params, n, m as u64, 2).unwrap();
        a2.insert_all(&stream);
        best_a2 = best_a2.min(start.elapsed().as_secs_f64() * 1e9 / m as f64);
        bits_a2 = a2.model_bits();

        let start = Instant::now();
        let mut mg = MisraGriesBaseline::new(EPS, PHI, n);
        mg.insert_all(&stream);
        best_mg = best_mg.min(start.elapsed().as_secs_f64() * 1e9 / m as f64);
        bits_mg = mg.model_bits();
    }
    row("algo1", best_a1, bits_a1);
    row("algo2", best_a2, bits_a2);
    row("misra-gries", best_mg, bits_mg);
    t.print();
    println!(
        "Both paper algorithms now sit within a small constant factor of\n\
         each other in update time (the sampled-regime skip path does O(1)\n\
         work on unsampled items); algo2 buys its smaller eps-term space\n\
         bound with the R = Theta(log 1/phi) repetition pass it runs on\n\
         each sampled item.\n"
    );
}

fn shard_and_merge_correctness() {
    // With Zipf(1.5) the rank-1 item holds ~38% of the stream - a clear
    // heavy hitter at phi = 0.2.
    let m = 1usize << 22;
    let n = 1u64 << 32;
    let stream = zipf_stream(m, n, 1.5, 31);
    let top = hh_bench::workloads::zipf_top_item(n, 1.5, 31);
    let mut t = Table::new(
        "E7d - shard-and-merge Misra-Gries (mergeable-summaries extension; single-CPU box, so the claim is correctness, not speedup)",
        &["shards", "wall ms", "heavy item found", "estimate gap vs sequential"],
    );
    let mut seq = MisraGriesBaseline::new(EPS, PHI, n);
    seq.insert_all(&stream);
    use hh_core::FrequencyEstimator;
    let seq_est = seq.estimate(top);
    for shards in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let merged = shard_and_merge(&stream, shards, || MisraGriesBaseline::new(EPS, PHI, n));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let found = merged.report().contains(top);
        let gap = (merged.estimate(top) - seq_est).abs() / m as f64;
        t.row(vec![
            shards.into(),
            hh_bench::Cell::Float(ms, 1),
            if found { "yes" } else { "NO" }.into(),
            gap.into(),
        ]);
    }
    t.print();
    println!(
        "Merging preserves the Misra-Gries guarantee: the merged estimate\n\
         stays within the combined eps-budget of the sequential run\n\
         regardless of shard count."
    );
}

fn main() {
    println!("# E7: paper algorithms vs baselines\n");
    space_vs_log_n();
    accuracy_on_zipf();
    update_time_tradeoff();
    shard_and_merge_correctness();
}
