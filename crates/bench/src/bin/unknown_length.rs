//! Experiment E9: the unknown-stream-length wrapper (Theorem 7).
//!
//! Compares, across stream lengths spanning several epochs of the
//! guessing schedule: the known-m Algorithm 1, the wrapper with exact
//! position tracking (log m bits), and the wrapper with Morris tracking
//! (log log m bits — the paper's construction). Reports correctness,
//! estimate error and the space split.
//!
//! Usage: `cargo run --release -p hh-bench --bin unknown_length`

use hh_bench::{planted_stream, Table};
use hh_core::{
    Constants, HeavyHitters, HhParams, PositionTracking, SimpleListHh, StreamSummary,
    UnknownLengthHh,
};
use hh_space::SpaceUsage;

const HEAVY: [(u64, f64); 2] = [(7, 0.40), (8, 0.30)];

fn main() {
    let params = HhParams::with_delta(0.1, 0.25, 0.1).unwrap();
    let n = 1u64 << 40;
    println!("# E9: unknown stream length (Theorem 7)\n");
    let mut t = Table::new(
        "wrapper vs known-m baseline (eps=0.1, phi=0.25; items 7:40% and 8:30% planted)",
        &[
            "m",
            "variant",
            "found both",
            "max |err|/m",
            "model bits",
            "position bits",
            "epoch",
        ],
    );

    for (mi, m) in [5_000u64, 80_000, 1_200_000, 16_000_000]
        .into_iter()
        .enumerate()
    {
        let stream = planted_stream(m, &HEAVY, 0xE9 + mi as u64);
        let score = |r: &hh_core::Report| -> (bool, f64) {
            let both = r.contains(7) && r.contains(8);
            let err = [(7u64, 0.40f64), (8, 0.30)]
                .iter()
                .filter_map(|&(i, f)| r.estimate(i).map(|e| (e - f * m as f64).abs() / m as f64))
                .fold(0.0f64, f64::max);
            (both, err)
        };

        // Known-m Algorithm 1.
        let mut known = SimpleListHh::new(params, n, m, 1).unwrap();
        known.insert_all(&stream);
        let (both, err) = score(&known.report());
        t.row(vec![
            m.into(),
            "known-m algo1".into(),
            if both { "yes" } else { "NO" }.into(),
            err.into(),
            known.model_bits().into(),
            "-".into(),
            "-".into(),
        ]);

        for (tracking, name) in [
            (PositionTracking::Exact, "wrapper (exact pos)"),
            (PositionTracking::Morris, "wrapper (Morris)"),
        ] {
            let mut w = UnknownLengthHh::with_options(
                params,
                n,
                2 + mi as u64,
                Constants::default(),
                tracking,
            )
            .unwrap();
            w.insert_all(&stream);
            let (both, err) = score(&w.report());
            t.row(vec![
                m.into(),
                name.into(),
                if both { "yes" } else { "NO" }.into(),
                err.into(),
                w.model_bits().into(),
                w.position_bits().to_string().into(),
                u64::from(w.epoch()).into(),
            ]);
        }
    }
    t.print();
    println!(
        "The wrapper pays a constant factor over the known-m instance (two\n\
         live instances with hash ranges sized for the epoch cap) and its\n\
         space stays flat in m. Position tracking: the exact counter grows\n\
         like 2 log m bits, the 32-copy Morris bank stays ~constant\n\
         (O(log log m)); the asymptotic crossover sits near m = 2^100 for\n\
         this copy count - the paper's point is the *growth rate*, which\n\
         the m sweep shows directly."
    );
}
