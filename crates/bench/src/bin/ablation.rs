//! Experiment E12: ablations of the design choices DESIGN.md calls out.
//!
//! * **Accelerated vs flat counters** (Algorithm 2's T3): §3.1.2 explains
//!   the epoch-indexed probabilities keep `Var[f̂] = O(ε⁻²)`; the flat
//!   ε-rate estimator's variance grows with the count. Measured as the
//!   RMS of the estimate error over trials, plus the table bits.
//! * **Median width** (repetition factor): failure probability of the
//!   median estimate vs the number of repetitions.
//! * **Hashed vs raw ids** (Algorithm 1's T1): the space that hashing
//!   buys at equal capacity.
//! * **Count-Min conservative update**: estimate tightening at zero space
//!   cost.
//!
//! Usage: `cargo run --release -p hh-bench --bin ablation [trials]`

use hh_baselines::CountMin;
use hh_bench::{planted_stream, Table};
use hh_core::{
    Constants, EpochMode, HeavyHitters, HhParams, MisraGries, OptimalListHh, SimpleListHh,
    StreamSummary,
};
use hh_space::SpaceUsage;

const M: u64 = 400_000;
const HEAVY: [(u64, f64); 2] = [(1, 0.30), (2, 0.18)];

fn epoch_mode_ablation(trials: u64) {
    let params = HhParams::with_delta(0.05, 0.15, 0.1).unwrap();
    let mut t = Table::new(
        "E12a - Algorithm 2: accelerated (T3) vs flat (T2-only) estimation",
        &[
            "mode",
            "rms err/m (item 1)",
            "worst err/m",
            "counter bits/rep",
        ],
    );
    for (mode, name) in [
        (EpochMode::Accelerated, "accelerated"),
        (EpochMode::Flat, "flat"),
    ] {
        let mut sq_sum = 0.0f64;
        let mut worst = 0.0f64;
        let mut bits = 0u64;
        for trial in 0..trials {
            let stream = planted_stream(M, &HEAVY, 0xAB1 + trial);
            let mut a = OptimalListHh::with_constants(
                params,
                1 << 40,
                M,
                trial ^ 0xE12,
                Constants::default(),
                mode,
            )
            .unwrap();
            a.insert_all(&stream);
            let (_, counting, _) = a.component_bits();
            bits = counting / a.repetitions() as u64;
            let est = a.report().estimate(1).unwrap_or(0.0);
            let err = (est - 0.30 * M as f64).abs() / M as f64;
            sq_sum += err * err;
            worst = worst.max(err);
        }
        t.row(vec![
            name.into(),
            ((sq_sum / trials as f64).sqrt()).into(),
            worst.into(),
            bits.into(),
        ]);
    }
    t.print();
}

fn median_width_ablation(trials: u64) {
    let mut t = Table::new(
        "E12b - Algorithm 2: repetition (median width) sweep",
        &["rep factor", "repetitions", "violation rate", "total bits"],
    );
    let params = HhParams::with_delta(0.05, 0.15, 0.1).unwrap();
    for rep_factor in [0.5, 1.0, 2.0, 5.0] {
        let consts = Constants {
            a2_rep_factor: rep_factor,
            a2_rep_min: 1,
            ..Constants::default()
        };
        let mut violations = 0u64;
        let mut reps = 0usize;
        let mut bits = 0u64;
        for trial in 0..trials {
            let stream = planted_stream(M, &HEAVY, 0xAB2 + trial);
            let mut a = OptimalListHh::with_constants(
                params,
                1 << 40,
                M,
                trial ^ 0x12E,
                consts,
                EpochMode::Accelerated,
            )
            .unwrap();
            a.insert_all(&stream);
            reps = a.repetitions();
            bits = a.model_bits();
            let r = a.report();
            let ok = r.contains(1)
                && r.contains(2)
                && r.estimate(1)
                    .is_some_and(|e| (e - 0.30 * M as f64).abs() <= 0.05 * M as f64);
            violations += u64::from(!ok);
        }
        t.row(vec![
            rep_factor.into(),
            reps.into(),
            (violations as f64 / trials as f64).into(),
            bits.into(),
        ]);
    }
    t.print();
}

fn hashed_id_ablation() {
    let mut t = Table::new(
        "E12c - Algorithm 1: hashed ids vs raw ids at equal capacity (the log eps^-1 vs log n trade)",
        &["log2 n", "algo1 (hashed) bits", "raw-id MG bits", "raw/hashed"],
    );
    let params = HhParams::with_delta(0.02, 0.2, 0.1).unwrap();
    for log_n in [24u32, 40, 60] {
        let n = 1u64 << log_n;
        let stream = planted_stream(1 << 21, &HEAVY, log_n as u64);
        let mut hashed = SimpleListHh::new(params, n, 1 << 21, 9).unwrap();
        hashed.insert_all(&stream);
        // Raw-id variant: identical capacity and (simulated) sampling via
        // the same table over raw ids on the full stream, pricing keys at
        // log n. Counter magnitudes differ (unsampled), matching how the
        // prior art actually runs.
        let mut raw = MisraGries::for_universe((4.0_f64 / 0.02).ceil() as usize, n);
        raw.insert_all(&stream);
        t.row(vec![
            u64::from(log_n).into(),
            hashed.model_bits().into(),
            raw.model_bits().into(),
            (raw.model_bits() as f64 / hashed.model_bits() as f64).into(),
        ]);
    }
    t.print();
}

fn conservative_update_ablation() {
    let mut t = Table::new(
        "E12d - Count-Min: plain vs conservative update (mean absolute overestimate on 200 light probes)",
        &["variant", "mean over-estimate", "bits"],
    );
    let stream = planted_stream(M, &HEAVY, 0xAB4);
    for (conservative, name) in [(false, "plain"), (true, "conservative")] {
        let mut cm = CountMin::with_dimensions(256, 4, 0.05, 0.15, 1 << 40, 77, conservative);
        cm.insert_all(&stream);
        use hh_core::FrequencyEstimator;
        let probes: Vec<u64> = (0..200).map(|i| 1_000_000 + i * 17).collect();
        let mean_over: f64 = probes
            .iter()
            .map(|&p| {
                let truth = stream.iter().filter(|&&x| x == p).count() as f64;
                (cm.estimate(p) - truth).max(0.0)
            })
            .sum::<f64>()
            / probes.len() as f64;
        t.row(vec![name.into(), mean_over.into(), cm.model_bits().into()]);
    }
    t.print();
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    println!("# E12: design-choice ablations ({trials} trials where sampled)\n");
    epoch_mode_ablation(trials);
    median_width_ablation(trials);
    hashed_id_ablation();
    conservative_update_ablation();
}
