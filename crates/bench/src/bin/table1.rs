//! Experiments E1–E5 + E10: reproduce Table 1 of the paper.
//!
//! For every row of Table 1 this binary sweeps each parameter that
//! appears in the bound, measures the implementation's `model_bits()`,
//! and prints the ratio `measured / bound`. The paper's claim is
//! reproduced when the ratio stays flat (bounded) along every sweep —
//! that is what "the algorithm is `O(bound)`" means operationally.
//!
//! Usage: `cargo run --release -p hh-bench --bin table1 [--csv DIR]`

use hh_bench::{planted_stream, Table};
use hh_core::{EpsMaximum, EpsMinimum, HhParams, OptimalListHh, SimpleListHh, StreamSummary};
use hh_space::{bounds, SpaceUsage};
use hh_votes::{MallowsModel, Ranking, StreamingBorda, StreamingMaximin, VoteSummary};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HEAVY: [(u64, f64); 2] = [(7, 0.30), (8, 0.12)];

fn csv_dir() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned())
}

fn maybe_csv(table: &Table, dir: &Option<String>, name: &str) {
    if let Some(d) = dir {
        let path = format!("{d}/{name}.csv");
        table.write_csv(&path).expect("write csv");
        eprintln!("wrote {path}");
    }
}

/// E1: (ε, φ)-heavy hitters. The total bound is
/// `ε⁻¹ log φ⁻¹ + φ⁻¹ log n + log log m`; because the three terms have
/// very different constants, the reproduction validates **each term
/// against its own formula**: Algorithm 2's counting tables against
/// `ε⁻¹ log φ⁻¹`, its candidate table against `φ⁻¹ log n`, and the
/// sampler against `log log m` (and Algorithm 1's tables against
/// `ε⁻¹ log ε⁻¹` / `φ⁻¹ log n`). Flat per-term ratios along each sweep
/// reproduce the bound.
fn hh_rows(dir: &Option<String>) {
    let lg = |x: f64| x.log2().max(1.0);
    let mut t = Table::new(
        "E1 - Table 1 row 1: (eps,phi)-Heavy Hitters, per-term ratios",
        &[
            "sweep",
            "eps",
            "phi",
            "log2 n",
            "log2 m",
            "a2 count/(e^-1 lg phi^-1)",
            "a2 t1/(phi^-1 lg n)",
            "a2 sampler/lglg m",
            "a1 t1/(e^-1 lg e^-1)",
            "a1 t2/(phi^-1 lg n)",
        ],
    );
    // Saturated sampling for the space measurement: a smaller ℓ than the
    // accuracy-tuned default so that s reaches its cap within the test
    // stream lengths (the bound regime is m >> ℓ).
    let consts = hh_core::Constants {
        a2_sample_factor: 500.0,
        ..hh_core::Constants::default()
    };
    let mut run = |sweep: &str, eps: f64, phi: f64, log_n: u32, log_m: u32, seed: u64| {
        let n = 1u64 << log_n;
        let m = 1u64 << log_m;
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        let stream = planted_stream(m, &HEAVY, seed);
        let mut a2 = OptimalListHh::with_constants(
            params,
            n,
            m,
            seed ^ 1,
            consts,
            hh_core::EpochMode::Accelerated,
        )
        .unwrap();
        a2.insert_all(&stream);
        let (a2_t1, a2_count, a2_samp) = a2.component_bits();
        let mut a1 = SimpleListHh::new(params, n, m, seed ^ 2).unwrap();
        a1.insert_all(&stream);
        let (a1_t1, a1_t2, _) = a1.component_bits();
        // The repetition count is Θ(log(12/φ)) by the paper's own
        // formula; using the same inner constant keeps the φ sweep flat.
        let term_count = (1.0 / eps) * lg(12.0 / phi);
        let term_ids = (1.0 / phi) * lg(n as f64);
        let term_samp = lg(lg(m as f64));
        let term_a1 = (1.0 / eps) * lg(1.0 / eps);
        t.row(vec![
            sweep.into(),
            eps.into(),
            phi.into(),
            u64::from(log_n).into(),
            u64::from(log_m).into(),
            (a2_count as f64 / term_count).into(),
            (a2_t1 as f64 / term_ids).into(),
            (a2_samp as f64 / term_samp).into(),
            (a1_t1 as f64 / term_a1).into(),
            (a1_t2 as f64 / term_ids).into(),
        ]);
    };
    for (i, eps) in [0.1, 0.05, 0.025].into_iter().enumerate() {
        run("eps", eps, 0.2, 40, 21, 100 + i as u64);
    }
    for (i, phi) in [0.5, 0.25, 0.125, 0.0625].into_iter().enumerate() {
        run("phi", 0.02, phi, 40, 21, 200 + i as u64);
    }
    for (i, log_n) in [10u32, 20, 40, 59].into_iter().enumerate() {
        run("n", 0.05, 0.2, log_n, 21, 300 + i as u64);
    }
    for (i, log_m) in [20u32, 22, 24].into_iter().enumerate() {
        run("m", 0.1, 0.2, 40, log_m, 400 + i as u64);
    }
    t.print();
    maybe_csv(&t, dir, "e1_heavy_hitters");
}

/// E2: ε-Maximum against `ε⁻¹ log ε⁻¹ + log n + log log m`.
fn max_rows(dir: &Option<String>) {
    let mut t = Table::new(
        "E2 - Table 1 row 2: eps-Maximum [bits vs eps^-1 log eps^-1 + log n + loglog m]",
        &["sweep", "eps", "log2 n", "log2 m", "bits", "bits/bound"],
    );
    let mut run = |sweep: &str, eps: f64, log_n: u32, log_m: u32, seed: u64| {
        let n = 1u64 << log_n;
        let m = 1u64 << log_m;
        let stream = planted_stream(m, &HEAVY, seed);
        let mut a = EpsMaximum::new(eps, 0.1, n, m, seed ^ 3).unwrap();
        a.insert_all(&stream);
        let bound = bounds::maximum(eps, n, m);
        t.row(vec![
            sweep.into(),
            eps.into(),
            u64::from(log_n).into(),
            u64::from(log_m).into(),
            a.model_bits().into(),
            (a.model_bits() as f64 / bound).into(),
        ]);
    };
    for (i, eps) in [0.1, 0.05, 0.025, 0.0125].into_iter().enumerate() {
        run("eps", eps, 40, 21, 500 + i as u64);
    }
    for (i, log_n) in [10u32, 20, 40, 59].into_iter().enumerate() {
        run("n", 0.05, log_n, 21, 600 + i as u64);
    }
    for (i, log_m) in [16u32, 20, 24].into_iter().enumerate() {
        run("m", 0.05, 40, log_m, 700 + i as u64);
    }
    t.print();
    maybe_csv(&t, dir, "e2_maximum");
}

/// E3: ε-Minimum against upper `ε⁻¹ log log (ε)⁻¹ + log log m` and lower
/// `ε⁻¹ + log log m`.
fn min_rows(dir: &Option<String>) {
    let mut t = Table::new(
        "E3 - Table 1 row 3: eps-Minimum [bits vs eps^-1 loglog eps^-1 + loglog m (UB), eps^-1 + loglog m (LB)]",
        &["sweep", "eps", "universe", "log2 m", "bits", "bits/UB", "bits/LB"],
    );
    let mut run = |sweep: &str, eps: f64, log_m: u32, seed: u64| {
        let m = 1u64 << log_m;
        // The problem needs |U| < 1/((1−δ)ε) for the tracked regime.
        let universe = ((0.5 / eps).ceil() as u64).max(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let counts: Vec<(u64, u64)> = (0..universe)
            .map(|i| {
                (
                    i,
                    if i == 2 {
                        m / (4 * universe)
                    } else {
                        m / universe
                    },
                )
            })
            .collect();
        let stream = hh_streams::arrange(&counts, hh_streams::OrderPolicy::Shuffled, &mut rng);
        let mut a = EpsMinimum::new(eps, 0.2, universe, m, seed ^ 4).unwrap();
        a.insert_all(&stream);
        let _ = a.min_estimate();
        let ub = bounds::minimum_upper(eps, m);
        let lb = bounds::minimum_lower(eps, m);
        t.row(vec![
            sweep.into(),
            eps.into(),
            universe.into(),
            u64::from(log_m).into(),
            a.model_bits().into(),
            (a.model_bits() as f64 / ub).into(),
            (a.model_bits() as f64 / lb).into(),
        ]);
    };
    for (i, eps) in [0.1, 0.05, 0.025, 0.0125].into_iter().enumerate() {
        run("eps", eps, 20, 800 + i as u64);
    }
    for (i, log_m) in [16u32, 20, 23].into_iter().enumerate() {
        run("m", 0.05, log_m, 900 + i as u64);
    }
    t.print();
    maybe_csv(&t, dir, "e3_minimum");
}

/// E4: ε-Borda against `n(log ε⁻¹ + log n) + log log m`.
fn borda_rows(dir: &Option<String>) {
    let mut t = Table::new(
        "E4 - Table 1 row 4: eps-Borda [bits vs n(log eps^-1 + log n) + loglog m]",
        &["sweep", "eps", "n", "votes", "bits", "bits/bound"],
    );
    let mut run = |sweep: &str, eps: f64, n: usize, m: u64, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MallowsModel::new(Ranking::identity(n), 0.8);
        let mut a = StreamingBorda::new(n, eps, 0.5, 0.1, m, seed ^ 5).unwrap();
        for _ in 0..m {
            a.insert_vote(&model.sample(&mut rng));
        }
        let bound = bounds::borda(eps, n as u64, m);
        t.row(vec![
            sweep.into(),
            eps.into(),
            n.into(),
            m.into(),
            a.model_bits().into(),
            (a.model_bits() as f64 / bound).into(),
        ]);
    };
    for (i, n) in [8usize, 16, 32, 64].into_iter().enumerate() {
        run("n", 0.1, n, 50_000, 1000 + i as u64);
    }
    for (i, eps) in [0.2, 0.1, 0.05].into_iter().enumerate() {
        run("eps", eps, 16, 50_000, 1100 + i as u64);
    }
    t.print();
    maybe_csv(&t, dir, "e4_borda");
}

/// E5: ε-Maximin against upper `nε⁻² log² n + log log m` and lower
/// `n(ε⁻² + log n) + log log m`.
fn maximin_rows(dir: &Option<String>) {
    let mut t = Table::new(
        "E5 - Table 1 row 5: eps-Maximin [bits vs n eps^-2 log^2 n + loglog m (UB), n(eps^-2 + log n) (LB)]",
        &["sweep", "eps", "n", "votes", "bits", "bits/UB", "bits/LB"],
    );
    let mut run = |sweep: &str, eps: f64, n: usize, m: u64, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MallowsModel::new(Ranking::identity(n), 0.8);
        let mut a = StreamingMaximin::new(n, eps, 0.5, 0.1, m, seed ^ 6).unwrap();
        for _ in 0..m {
            a.insert_vote(&model.sample(&mut rng));
        }
        let ub = bounds::maximin_upper(eps, n as u64, m);
        let lb = bounds::maximin_lower(eps, n as u64, m);
        t.row(vec![
            sweep.into(),
            eps.into(),
            n.into(),
            m.into(),
            a.model_bits().into(),
            (a.model_bits() as f64 / ub).into(),
            (a.model_bits() as f64 / lb).into(),
        ]);
    };
    for (i, n) in [4usize, 8, 16].into_iter().enumerate() {
        run("n", 0.2, n, 200_000, 1200 + i as u64);
    }
    for (i, eps) in [0.4, 0.2, 0.1].into_iter().enumerate() {
        run("eps", eps, 8, 200_000, 1300 + i as u64);
    }
    t.print();
    maybe_csv(&t, dir, "e5_maximin");
}

/// E10: the §1.1 parameter example — at `ε⁻¹ = log₂ n`, ε-Maximum uses
/// `O(log n · log log n)` bits where the previous best was `Ω(log² n)`.
fn e10_rows(dir: &Option<String>) {
    let mut t = Table::new(
        "E10 - intro example: eps^-1 = log2 n [ours vs previous eps^-1 log n = log^2 n]",
        &["log2 n", "eps", "ours bits", "prev bound bits", "ours/prev"],
    );
    for (i, log_n) in [16u32, 24, 32, 48].into_iter().enumerate() {
        let n = 1u64 << log_n;
        let eps = 1.0 / log_n as f64;
        let m = 1u64 << 21;
        let stream = planted_stream(m, &HEAVY, 1400 + i as u64);
        let mut a = EpsMaximum::new(eps, 0.1, n, m, 1500 + i as u64).unwrap();
        a.insert_all(&stream);
        let prev = (1.0 / eps) * log_n as f64; // ε⁻¹ log n = log² n
        t.row(vec![
            u64::from(log_n).into(),
            eps.into(),
            a.model_bits().into(),
            Into::<hh_bench::Cell>::into(prev),
            (a.model_bits() as f64 / prev).into(),
        ]);
    }
    t.print();
    maybe_csv(&t, dir, "e10_intro_example");
}

fn main() {
    let dir = csv_dir();
    println!("# Table 1 reproduction (experiments E1-E5, E10)\n");
    println!(
        "Constants profile: practical (see hh_core::Constants). Ratios are\n\
         measured model bits / bound units; a reproduced bound shows a flat\n\
         ratio along each sweep.\n"
    );
    hh_rows(&dir);
    max_rows(&dir);
    min_rows(&dir);
    borda_rows(&dir);
    maximin_rows(&dir);
    e10_rows(&dir);
}
