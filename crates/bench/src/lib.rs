//! Shared experiment-harness code: workload construction, measurement
//! records, and Markdown/CSV emitters used by the experiment binaries.
//!
//! Experiment binaries (one per DESIGN.md experiment family):
//!
//! | Binary | Experiments | Regenerates |
//! |--------|-------------|-------------|
//! | `table1` | E1–E5, E10 | Table 1, row by row: measured model bits vs bound formulas |
//! | `accuracy` | E11 | Definition-1 guarantee Monte Carlo (recall / false positives / error / failure rate) |
//! | `crossover` | E7 | space & accuracy vs the six baselines, crossover in `log n` |
//! | `lower_bounds` | E8 | reduction success rates and message-vs-floor ratios |
//! | `unknown_length` | E9 | Theorem-7 wrapper overhead and Morris accuracy |
//! | `ablation` | E12 | accelerated vs flat counters, hashed vs raw ids, median width |
//!
//! Criterion benches (`benches/`) cover E6: per-update and report times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod workloads;

pub use report::{Cell, Table};
pub use workloads::{planted_counts, planted_stream, zipf_stream};
