//! Shared workload builders used by the experiment binaries and the
//! Criterion benches.

use hh_streams::{arrange, collect_stream, OrderPolicy, ZipfGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(item, count)` pairs with planted heavy fractions over `light_ids`
/// background singleton-ish ids, summing exactly to `m`.
pub fn planted_counts(m: u64, heavy: &[(u64, f64)], light_ids: u64) -> Vec<(u64, u64)> {
    let mut counts: Vec<(u64, u64)> = heavy
        .iter()
        .map(|&(id, frac)| (id, (frac * m as f64).round() as u64))
        .collect();
    let used: u64 = counts.iter().map(|&(_, c)| c).sum();
    assert!(used <= m, "planted mass exceeds stream length");
    let fill = m - used;
    for j in 0..light_ids {
        let c = fill / light_ids + u64::from(j < fill % light_ids);
        if c > 0 {
            counts.push((1_000_000 + j, c));
        }
    }
    counts
}

/// A shuffled planted stream of length `m`.
pub fn planted_stream(m: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
    let counts = planted_counts(m, heavy, 4096);
    let mut rng = StdRng::seed_from_u64(seed);
    arrange(&counts, OrderPolicy::Shuffled, &mut rng)
}

/// A Zipf(`exponent`) stream over a scrambled `[0, n)` universe.
pub fn zipf_stream(m: usize, n: u64, exponent: f64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = ZipfGenerator::new(n, exponent).scrambled(&mut rng);
    collect_stream(&mut gen, m, &mut rng)
}

/// The top item id of the scrambled Zipf stream built with the same
/// parameters (rank-1 id after scrambling).
pub fn zipf_top_item(n: u64, exponent: f64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = ZipfGenerator::new(n, exponent).scrambled(&mut rng);
    gen.id_of_rank(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_counts_sum_to_m() {
        let counts = planted_counts(10_000, &[(1, 0.3), (2, 0.2)], 100);
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10_000);
        assert_eq!(counts[0], (1, 3000));
        assert_eq!(counts[1], (2, 2000));
    }

    #[test]
    fn planted_stream_has_exact_heavy_counts() {
        let stream = planted_stream(5_000, &[(9, 0.5)], 3);
        assert_eq!(stream.len(), 5_000);
        let c9 = stream.iter().filter(|&&x| x == 9).count();
        assert_eq!(c9, 2_500);
    }

    #[test]
    fn zipf_top_item_is_consistent_with_stream() {
        let n = 1 << 16;
        let stream = zipf_stream(50_000, n, 1.2, 7);
        let top = zipf_top_item(n, 1.2, 7);
        let c_top = stream.iter().filter(|&&x| x == top).count();
        // Rank-1 item should be the most frequent in a big sample.
        let max_c = {
            let mut counts = std::collections::HashMap::new();
            for &x in &stream {
                *counts.entry(x).or_insert(0usize) += 1;
            }
            counts.values().copied().max().unwrap()
        };
        assert!(c_top * 10 >= max_c * 8, "top item {c_top} vs max {max_c}");
    }
}
