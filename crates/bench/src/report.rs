//! Minimal Markdown/CSV table emitters (serde_json is outside the
//! allowed dependency set, so output is hand-rolled).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One table cell.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Plain text.
    Text(String),
    /// Integer, rendered with thousands grouping.
    Int(u64),
    /// Float, rendered with the given number of decimals.
    Float(f64, usize),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => group_thousands(*v),
            Cell::Float(v, d) => format!("{v:.*}", d),
        }
    }

    fn render_csv(&self) -> String {
        match self {
            Cell::Text(s) => s.replace(',', ";"),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v, d) => format!("{v:.*}", d),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as u64)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v, 3)
    }
}

fn group_thousands(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// A simple experiment results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut cols: Vec<Vec<String>> = vec![self.headers.clone()];
        for row in &self.rows {
            cols.push(row.iter().map(Cell::render).collect());
        }
        let widths: Vec<usize> = (0..self.headers.len())
            .map(|c| cols.iter().map(|r| r[c].len()).max().unwrap_or(1))
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", body.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&cols[0], &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &cols[1..] {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders CSV (no quoting needed: commas are replaced in cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render_csv).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Prints the Markdown form to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }

    /// Writes the CSV form next to the experiment outputs.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new("demo", &["name", "bits"]);
        t.row(vec!["algo1".into(), 12345u64.into()]);
        t.row(vec!["mg".into(), 7u64.into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| algo1 | 12_345 |"));
        assert!(md.contains("| mg    | 7      |"));
    }

    #[test]
    fn csv_renders_raw_values() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec![Cell::Float(1.23456, 2), Cell::Text("x,y".into())]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1.23,x;y\n");
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(1), "1");
        assert_eq!(group_thousands(1234), "1_234");
        assert_eq!(group_thousands(1234567), "1_234_567");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
