//! Rank-aggregation substrate and the paper's voting-stream algorithms.
//!
//! §1.2 and §3.4 of the paper extend heavy hitters to streams whose
//! elements are *rankings* (total orders) of `n` candidates — the setting
//! of rank aggregation on the web and of voting streams. This crate
//! provides:
//!
//! * [`Ranking`] — validated permutations of `[n]`, with uniform
//!   (impartial-culture), [`MallowsModel`] and [`PlackettLuce`] vote
//!   generators as realistic workloads,
//! * [`election`] — exact Borda / maximin / plurality / veto tallies (the
//!   ground-truth oracle),
//! * [`StreamingBorda`] — Theorem 5: every candidate's Borda score to
//!   ±εmn in `O(n(log n + log ε⁻¹ + log log δ⁻¹) + log log m)` bits,
//! * [`StreamingMaximin`] — Theorem 6: every candidate's maximin score to
//!   ±εm in `O(nε⁻² log n (log n + log δ⁻¹) + log log m)` bits,
//! * [`adapters`] — plurality and veto winners as instances of
//!   ε-Maximum / ε-Minimum over the first- and last-ranked items ("Finding
//!   items with maximum and minimum frequencies in a stream correspond to
//!   finding winners under plurality and veto voting rules"),
//! * [`UnknownBorda`] — the Theorem 8 instance-doubling variant for
//!   unknown stream length.
//!
//! # Example
//!
//! ```
//! use hh_votes::{MallowsModel, Ranking, StreamingBorda, VoteSummary};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(5);
//! let model = MallowsModel::new(Ranking::identity(6), 0.5);
//! let m = 20_000u64;
//! let mut borda = StreamingBorda::new(6, 0.1, 0.5, 0.1, m, 9).unwrap();
//! for _ in 0..m {
//!     borda.insert_vote(&model.sample(&mut rng));
//! }
//! // The Mallows center tops the Borda count.
//! assert_eq!(borda.winner().unwrap().item, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod borda;
pub mod election;
pub mod maximin;
pub mod pairwise;
pub mod ranking;
pub mod unknown;

pub use adapters::{PluralityAdapter, VetoAdapter};
pub use borda::StreamingBorda;
pub use election::Election;
pub use maximin::StreamingMaximin;
pub use pairwise::PairwiseMaximin;
pub use ranking::{MallowsModel, PlackettLuce, Ranking};
pub use unknown::UnknownBorda;

/// A one-pass summary over a stream of rankings (the voting analogue of
/// `hh_core::StreamSummary`).
pub trait VoteSummary {
    /// Processes one vote.
    fn insert_vote(&mut self, vote: &Ranking);

    /// Processes a slice of votes.
    fn insert_votes(&mut self, votes: &[Ranking]) {
        for v in votes {
            self.insert_vote(v);
        }
    }
}
