//! Streaming (ε, φ)-List Maximin (Theorem 6).
//!
//! "Let ℓ = (8/ε²) ln(6n/δ) ... We put the current vote in a set S with
//! probability p" — the algorithm stores the sampled votes themselves
//! (each `Θ(n log n)` bits) and computes all pairwise defeat counts
//! `D_S(x, y)` at report time; a Chernoff + union bound over the `n²`
//! candidate pairs gives `|D_S(x,y)·(1/p) − D(x,y)| ≤ εm/2` for all
//! pairs, hence every maximin score to ±εm. Space
//! `O(nε⁻² log n (log n + log δ⁻¹) + log log m)` bits — Table 1's most
//! expensive row, and provably so (Theorem 13's `Ω(nε⁻²)`).

use crate::election::Election;
use crate::ranking::Ranking;
use crate::VoteSummary;
use hh_core::{ItemEstimate, ParamError, Report};
use hh_sampling::SkipSampler;
use hh_space::SpaceUsage;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 6's streaming maximin-score estimator.
#[derive(Debug, Clone)]
pub struct StreamingMaximin {
    n: usize,
    eps: f64,
    phi: f64,
    sampler: SkipSampler,
    p: f64,
    /// The sampled votes `S` (the paper stores them verbatim).
    sampled: Vec<Ranking>,
    rng: StdRng,
}

impl StreamingMaximin {
    /// Estimator for `n` candidates over an advertised `m`-vote stream:
    /// every maximin score to ±εm with probability 1 − δ.
    pub fn new(
        n: usize,
        eps: f64,
        phi: f64,
        delta: f64,
        m: u64,
        seed: u64,
    ) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        if m == 0 {
            return Err(ParamError::ZeroLength);
        }
        if !(eps > 0.0 && eps < 1.0 && eps.is_finite()) {
            return Err(ParamError::EpsOutOfRange(eps));
        }
        if !(phi > eps && phi <= 1.0) {
            return Err(ParamError::PhiOutOfRange(phi));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(ParamError::DeltaOutOfRange(delta));
        }
        // ℓ = (8/ε²) ln(6n/δ) (Theorem 6).
        let ell = (8.0 * (6.0 * n as f64 / delta).ln() / (eps * eps)).ceil();
        let sampler = SkipSampler::with_probability((2.0 * ell / m as f64).min(1.0));
        let p = sampler.probability();
        Ok(Self {
            n,
            eps,
            phi,
            sampler,
            p,
            sampled: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Number of candidates.
    pub fn candidates(&self) -> usize {
        self.n
    }

    /// Votes sampled.
    pub fn samples(&self) -> u64 {
        self.sampled.len() as u64
    }

    /// The realized sampling probability.
    pub fn sampling_probability(&self) -> f64 {
        self.p
    }

    /// Estimated maximin score of every candidate (scaled to the full
    /// stream).
    pub fn score_estimates(&self) -> Vec<f64> {
        let tally = Election::from_votes(self.n, &self.sampled);
        tally
            .maximin_scores()
            .into_iter()
            .map(|s| s as f64 / self.p)
            .collect()
    }

    /// The ε-maximin output (Definition 9): the estimated maximum maximin
    /// score and its witness.
    pub fn winner(&self) -> Option<ItemEstimate> {
        if self.sampled.is_empty() {
            return None;
        }
        let est = self.score_estimates();
        let best = (0..self.n).max_by(|&a, &b| est[a].total_cmp(&est[b]))?;
        Some(ItemEstimate {
            item: best as u64,
            count: est[best],
        })
    }

    /// The (ε, φ)-List maximin output (Definition 8): candidates whose
    /// sampled maximin clears `(φ − ε/2)s`.
    pub fn list_report(&self) -> Report {
        if self.sampled.is_empty() {
            return Report::default();
        }
        let s = self.sampled.len() as f64;
        let tally = Election::from_votes(self.n, &self.sampled);
        let threshold = (self.phi - self.eps / 2.0) * s;
        tally
            .maximin_scores()
            .into_iter()
            .enumerate()
            .filter_map(|(i, sc)| {
                (sc as f64 >= threshold).then_some(ItemEstimate {
                    item: i as u64,
                    count: sc as f64 / self.p,
                })
            })
            .collect()
    }
}

impl VoteSummary for StreamingMaximin {
    fn insert_vote(&mut self, vote: &Ranking) {
        assert_eq!(vote.len(), self.n, "vote arity mismatch");
        if self.sampler.accept(&mut self.rng) {
            self.sampled.push(vote.clone());
        }
    }
}

impl SpaceUsage for StreamingMaximin {
    fn model_bits(&self) -> u64 {
        // Each stored vote is a permutation of [n]: n·⌈log₂ n⌉ bits.
        let per_vote = self.n as u64 * hh_space::id_bits(self.n as u64);
        self.sampled.len() as u64 * per_vote + self.sampler.model_bits()
    }
    fn heap_bytes(&self) -> usize {
        self.sampled.iter().map(|v| v.len() * 4).sum::<usize>() + self.sampled.capacity() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::MallowsModel;

    fn mallows_votes(n: usize, m: usize, dispersion: f64, seed: u64) -> Vec<Ranking> {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MallowsModel::new(Ranking::identity(n), dispersion);
        (0..m).map(|_| model.sample(&mut rng)).collect()
    }

    #[test]
    fn scores_within_eps_m_of_truth() {
        let n = 6usize;
        let m = 20_000usize;
        let votes = mallows_votes(n, m, 0.8, 1);
        let truth = Election::from_votes(n, &votes);
        let mut sm = StreamingMaximin::new(n, 0.1, 0.5, 0.1, m as u64, 2).unwrap();
        sm.insert_votes(&votes);
        let est = sm.score_estimates();
        let exact = truth.maximin_scores();
        for c in 0..n {
            assert!(
                (est[c] - exact[c] as f64).abs() <= 0.1 * m as f64,
                "candidate {c}: est {} truth {}",
                est[c],
                exact[c]
            );
        }
    }

    #[test]
    fn winner_is_condorcet_when_one_exists() {
        let n = 5usize;
        let m = 15_000usize;
        let votes = mallows_votes(n, m, 0.4, 3);
        let truth = Election::from_votes(n, &votes);
        // Concentrated Mallows: candidate 0 is a Condorcet winner, and
        // the Condorcet winner maximizes maximin.
        assert_eq!(truth.condorcet_winner(), Some(0));
        let mut sm = StreamingMaximin::new(n, 0.1, 0.5, 0.1, m as u64, 4).unwrap();
        sm.insert_votes(&votes);
        assert_eq!(sm.winner().unwrap().item, 0);
    }

    #[test]
    fn list_reports_respect_threshold() {
        // All votes identical: candidate 0 beats everyone in every vote
        // (maximin = m); candidate n−1 never beats anyone (maximin = 0).
        let n = 4usize;
        let m = 8_000usize;
        let votes: Vec<Ranking> = (0..m).map(|_| Ranking::identity(n)).collect();
        let mut sm = StreamingMaximin::new(n, 0.1, 0.6, 0.1, m as u64, 5).unwrap();
        sm.insert_votes(&votes);
        let r = sm.list_report();
        assert!(r.contains(0));
        assert!(!r.contains(3));
        let est = r.estimate(0).unwrap();
        assert!((est - m as f64).abs() <= 0.1 * m as f64);
    }

    #[test]
    fn sample_count_concentrates() {
        let n = 4usize;
        let m = 1 << 18;
        let mut sm = StreamingMaximin::new(n, 0.2, 0.5, 0.1, m, 6).unwrap();
        let votes = mallows_votes(n, m as usize, 1.0, 7);
        sm.insert_votes(&votes);
        let expect = sm.sampling_probability() * m as f64;
        let got = sm.samples() as f64;
        assert!(
            (got - expect).abs() < 6.0 * expect.sqrt() + 6.0,
            "samples {got} vs expected {expect}"
        );
    }

    #[test]
    fn space_charges_votes_at_n_log_n() {
        let n = 16usize;
        let mut sm = StreamingMaximin::new(n, 0.2, 0.5, 0.1, 1 << 20, 8).unwrap();
        let votes = mallows_votes(n, 5000, 1.0, 9);
        sm.insert_votes(&votes);
        let per_vote = (n as u64) * 4; // n·log₂(16)
        assert_eq!(
            sm.model_bits(),
            sm.samples() * per_vote + sm.sampler.model_bits()
        );
    }
}
