//! The pairwise-matrix realization of streaming maximin (Theorem 6).
//!
//! Theorem 6's proof stores the sampled votes (`ℓ · n log n` bits) and
//! computes the defeat counts `D_S(x, y)` at report time. The same
//! analysis supports a second realization: maintain the `n×n` defeat
//! matrix *incrementally* and store no votes at all. Space becomes
//! `n² · O(log ℓ)` bits — smaller than the vote store whenever
//! `n < ℓ·log n / log ℓ` — at `O(n²)` update cost per sampled vote
//! instead of `O(n)`. Both realizations answer identically (they count
//! the same sample); [`PairwiseMaximin`] is the matrix form, letting the
//! ablation harness expose the space/time trade within one theorem.

use crate::ranking::Ranking;
use crate::VoteSummary;
use hh_core::{ItemEstimate, ParamError, Report};
use hh_sampling::SkipSampler;
use hh_space::{SpaceUsage, VarCounterArray};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Streaming maximin with an incrementally-maintained defeat matrix.
#[derive(Debug, Clone)]
pub struct PairwiseMaximin {
    n: usize,
    eps: f64,
    phi: f64,
    sampler: SkipSampler,
    p: f64,
    /// Row-major `n×n` defeat counts over the sampled votes:
    /// `matrix[x·n + y]` = sampled votes ranking `x` ahead of `y`.
    matrix: VarCounterArray,
    samples: u64,
    rng: StdRng,
}

impl PairwiseMaximin {
    /// Same contract as [`crate::StreamingMaximin::new`]: every maximin
    /// score to ±εm with probability 1 − δ over an advertised `m`-vote
    /// stream.
    pub fn new(
        n: usize,
        eps: f64,
        phi: f64,
        delta: f64,
        m: u64,
        seed: u64,
    ) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        if m == 0 {
            return Err(ParamError::ZeroLength);
        }
        if !(eps > 0.0 && eps < 1.0 && eps.is_finite()) {
            return Err(ParamError::EpsOutOfRange(eps));
        }
        if !(phi > eps && phi <= 1.0) {
            return Err(ParamError::PhiOutOfRange(phi));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(ParamError::DeltaOutOfRange(delta));
        }
        let ell = (8.0 * (6.0 * n as f64 / delta).ln() / (eps * eps)).ceil();
        let sampler = SkipSampler::with_probability((2.0 * ell / m as f64).min(1.0));
        let p = sampler.probability();
        Ok(Self {
            n,
            eps,
            phi,
            sampler,
            p,
            matrix: VarCounterArray::new(n * n),
            samples: 0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Number of candidates.
    pub fn candidates(&self) -> usize {
        self.n
    }

    /// Votes sampled.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sampled defeat count `D_S(x, y)`.
    pub fn defeats(&self, x: u32, y: u32) -> u64 {
        self.matrix.get(x as usize * self.n + y as usize)
    }

    /// Estimated maximin score of every candidate, scaled to the full
    /// stream.
    pub fn score_estimates(&self) -> Vec<f64> {
        (0..self.n)
            .map(|x| {
                let min = (0..self.n)
                    .filter(|&y| y != x)
                    .map(|y| self.matrix.get(x * self.n + y))
                    .min()
                    .unwrap_or(self.samples);
                min as f64 / self.p
            })
            .collect()
    }

    /// The ε-maximin winner (Definition 9).
    pub fn winner(&self) -> Option<ItemEstimate> {
        if self.samples == 0 {
            return None;
        }
        let est = self.score_estimates();
        let best = (0..self.n).max_by(|&a, &b| est[a].total_cmp(&est[b]))?;
        Some(ItemEstimate {
            item: best as u64,
            count: est[best],
        })
    }

    /// The (ε, φ)-List maximin output (Definition 8).
    pub fn list_report(&self) -> Report {
        if self.samples == 0 {
            return Report::default();
        }
        let threshold = (self.phi - self.eps / 2.0) * self.samples as f64;
        (0..self.n)
            .filter_map(|x| {
                let min = (0..self.n)
                    .filter(|&y| y != x)
                    .map(|y| self.matrix.get(x * self.n + y))
                    .min()
                    .unwrap_or(self.samples);
                (min as f64 >= threshold).then_some(ItemEstimate {
                    item: x as u64,
                    count: min as f64 / self.p,
                })
            })
            .collect()
    }
}

impl VoteSummary for PairwiseMaximin {
    fn insert_vote(&mut self, vote: &Ranking) {
        assert_eq!(vote.len(), self.n, "vote arity mismatch");
        if !self.sampler.accept(&mut self.rng) {
            return;
        }
        self.samples += 1;
        let order = vote.order();
        for (i, &x) in order.iter().enumerate() {
            let row = x as usize * self.n;
            for &y in &order[i + 1..] {
                self.matrix.increment(row + y as usize);
            }
        }
    }
}

impl SpaceUsage for PairwiseMaximin {
    fn model_bits(&self) -> u64 {
        self.matrix.model_bits() + self.sampler.model_bits()
    }
    fn heap_bytes(&self) -> usize {
        self.matrix.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maximin::StreamingMaximin;
    use crate::ranking::MallowsModel;

    fn mallows_votes(n: usize, m: usize, dispersion: f64, seed: u64) -> Vec<Ranking> {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MallowsModel::new(Ranking::identity(n), dispersion);
        (0..m).map(|_| model.sample(&mut rng)).collect()
    }

    #[test]
    fn matches_vote_storing_realization_exactly_at_p_one() {
        // Short stream forces p = 1 in both: identical samples, so the
        // two realizations of Theorem 6 must agree bit for bit.
        let n = 6usize;
        let m = 2_000usize;
        let votes = mallows_votes(n, m, 0.8, 1);
        let mut matrix = PairwiseMaximin::new(n, 0.1, 0.5, 0.1, m as u64, 2).unwrap();
        let mut stored = StreamingMaximin::new(n, 0.1, 0.5, 0.1, m as u64, 2).unwrap();
        assert_eq!(matrix.p, stored.sampling_probability());
        for v in &votes {
            matrix.insert_vote(v);
            stored.insert_vote(v);
        }
        if matrix.samples() == stored.samples() {
            // Same sampler seed and probability: same sample set.
            assert_eq!(matrix.score_estimates(), stored.score_estimates());
        }
        assert_eq!(matrix.winner().unwrap().item, stored.winner().unwrap().item);
    }

    #[test]
    fn scores_within_eps_m() {
        let n = 6usize;
        let m = 20_000usize;
        let votes = mallows_votes(n, m, 0.8, 3);
        let exact = crate::Election::from_votes(n, &votes);
        let mut pm = PairwiseMaximin::new(n, 0.1, 0.5, 0.1, m as u64, 4).unwrap();
        pm.insert_votes(&votes);
        let est = pm.score_estimates();
        let truth = exact.maximin_scores();
        for c in 0..n {
            assert!(
                (est[c] - truth[c] as f64).abs() <= 0.1 * m as f64,
                "candidate {c}: est {} truth {}",
                est[c],
                truth[c]
            );
        }
    }

    #[test]
    fn matrix_is_smaller_for_many_sampled_votes() {
        // With many sampled votes, n² counters beat storing the votes.
        let n = 8usize;
        let m = 60_000usize;
        let votes = mallows_votes(n, m, 1.0, 5);
        let mut pm = PairwiseMaximin::new(n, 0.1, 0.5, 0.1, m as u64, 6).unwrap();
        let mut sm = StreamingMaximin::new(n, 0.1, 0.5, 0.1, m as u64, 6).unwrap();
        for v in &votes {
            pm.insert_vote(v);
            sm.insert_vote(v);
        }
        assert!(
            pm.model_bits() < sm.model_bits(),
            "matrix {} !< votes {}",
            pm.model_bits(),
            sm.model_bits()
        );
    }

    #[test]
    fn defeat_counts_are_antisymmetric() {
        let n = 5usize;
        let votes = mallows_votes(n, 500, 1.0, 7);
        let mut pm = PairwiseMaximin::new(n, 0.2, 0.5, 0.1, 500, 8).unwrap();
        pm.insert_votes(&votes);
        let s = pm.samples();
        for x in 0..n as u32 {
            for y in (x + 1)..n as u32 {
                assert_eq!(
                    pm.defeats(x, y) + pm.defeats(y, x),
                    s,
                    "every sampled vote ranks one of ({x},{y}) first"
                );
            }
        }
    }
}
