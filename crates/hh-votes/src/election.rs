//! Exact election tallies — the ground-truth oracle for the voting
//! experiments.

use crate::ranking::Ranking;
use serde::{Deserialize, Serialize};

/// An exact tally over a (small enough to store) list of votes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Election {
    n: usize,
    votes: u64,
    /// `pairwise[x][y]` = number of votes ranking `x` ahead of `y`.
    pairwise: Vec<Vec<u64>>,
    borda: Vec<u64>,
    plurality: Vec<u64>,
    veto: Vec<u64>,
}

impl Election {
    /// Empty election over `n` candidates.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            votes: 0,
            pairwise: vec![vec![0; n]; n],
            borda: vec![0; n],
            plurality: vec![0; n],
            veto: vec![0; n],
        }
    }

    /// Tallies a full vote list.
    pub fn from_votes(n: usize, votes: &[Ranking]) -> Self {
        let mut e = Self::new(n);
        for v in votes {
            e.add_vote(v);
        }
        e
    }

    /// Registers one vote.
    pub fn add_vote(&mut self, vote: &Ranking) {
        assert_eq!(vote.len(), self.n, "vote arity mismatch");
        self.votes += 1;
        let order = vote.order();
        for (i, &c) in order.iter().enumerate() {
            self.borda[c as usize] += (self.n - 1 - i) as u64;
            for &d in &order[i + 1..] {
                self.pairwise[c as usize][d as usize] += 1;
            }
        }
        self.plurality[vote.top() as usize] += 1;
        self.veto[vote.bottom() as usize] += 1;
    }

    /// Number of candidates.
    pub fn candidates(&self) -> usize {
        self.n
    }

    /// Number of votes `m`.
    pub fn votes(&self) -> u64 {
        self.votes
    }

    /// Exact Borda scores (Definition 6's scoring).
    pub fn borda_scores(&self) -> &[u64] {
        &self.borda
    }

    /// Exact maximin scores: `min_{y≠x} |{votes ranking x ahead of y}|`.
    pub fn maximin_scores(&self) -> Vec<u64> {
        (0..self.n)
            .map(|x| {
                (0..self.n)
                    .filter(|&y| y != x)
                    .map(|y| self.pairwise[x][y])
                    .min()
                    .unwrap_or(self.votes)
            })
            .collect()
    }

    /// Number of votes in which `x` is ranked ahead of `y`.
    pub fn defeats(&self, x: u32, y: u32) -> u64 {
        self.pairwise[x as usize][y as usize]
    }

    /// First-place counts (plurality scores).
    pub fn plurality_scores(&self) -> &[u64] {
        &self.plurality
    }

    /// Last-place counts (veto "dislikes").
    pub fn veto_scores(&self) -> &[u64] {
        &self.veto
    }

    /// The Borda winner (lowest id on ties).
    pub fn borda_winner(&self) -> Option<u32> {
        argmax(&self.borda)
    }

    /// The maximin winner (lowest id on ties).
    pub fn maximin_winner(&self) -> Option<u32> {
        argmax(&self.maximin_scores())
    }

    /// The plurality winner (lowest id on ties).
    pub fn plurality_winner(&self) -> Option<u32> {
        argmax(&self.plurality)
    }

    /// The veto winner: *fewest* last places (lowest id on ties).
    pub fn veto_winner(&self) -> Option<u32> {
        (0..self.n)
            .min_by_key(|&c| (self.veto[c], c))
            .map(|c| c as u32)
    }

    /// The Condorcet winner (beats every other candidate pairwise), if
    /// one exists.
    pub fn condorcet_winner(&self) -> Option<u32> {
        (0..self.n)
            .find(|&x| {
                (0..self.n)
                    .filter(|&y| y != x)
                    .all(|y| 2 * self.pairwise[x][y] > self.votes)
            })
            .map(|x| x as u32)
    }
}

fn argmax(scores: &[u64]) -> Option<u32> {
    if scores.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for i in 1..scores.len() {
        if scores[i] > scores[best] {
            best = i;
        }
    }
    Some(best as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(order: &[u32]) -> Ranking {
        Ranking::new(order.to_vec()).unwrap()
    }

    /// The 5-vote election from the margins example: 3 × (0 ≻ 1 ≻ 2),
    /// 2 × (1 ≻ 2 ≻ 0).
    fn small_election() -> Election {
        let votes = vec![
            r(&[0, 1, 2]),
            r(&[0, 1, 2]),
            r(&[0, 1, 2]),
            r(&[1, 2, 0]),
            r(&[1, 2, 0]),
        ];
        Election::from_votes(3, &votes)
    }

    #[test]
    fn borda_scores_by_hand() {
        let e = small_election();
        // Candidate 0: 3 votes × 2 + 2 × 0 = 6.
        // Candidate 1: 3 × 1 + 2 × 2 = 7.
        // Candidate 2: 3 × 0 + 2 × 1 = 2.
        assert_eq!(e.borda_scores(), &[6, 7, 2]);
        assert_eq!(e.borda_winner(), Some(1));
        // Conservation: Σ scores = m·n(n−1)/2 = 5·3 = 15.
        assert_eq!(e.borda_scores().iter().sum::<u64>(), 15);
    }

    #[test]
    fn pairwise_and_maximin_by_hand() {
        let e = small_election();
        assert_eq!(e.defeats(0, 1), 3);
        assert_eq!(e.defeats(1, 0), 2);
        assert_eq!(e.defeats(1, 2), 5);
        assert_eq!(e.defeats(2, 0), 2);
        // maximin: 0 → min(3, 3) = 3; 1 → min(2, 5) = 2; 2 → min(0, 2)=0.
        assert_eq!(e.maximin_scores(), vec![3, 2, 0]);
        assert_eq!(e.maximin_winner(), Some(0));
        // 0 beats everyone pairwise: Condorcet winner.
        assert_eq!(e.condorcet_winner(), Some(0));
    }

    #[test]
    fn plurality_and_veto() {
        let e = small_election();
        assert_eq!(e.plurality_scores(), &[3, 2, 0]);
        assert_eq!(e.plurality_winner(), Some(0));
        // Last places: candidate 2 in 3 votes, candidate 0 in 2.
        assert_eq!(e.veto_scores(), &[2, 0, 3]);
        assert_eq!(e.veto_winner(), Some(1));
    }

    #[test]
    fn condorcet_cycle_has_no_winner() {
        let votes = vec![r(&[0, 1, 2]), r(&[1, 2, 0]), r(&[2, 0, 1])];
        let e = Election::from_votes(3, &votes);
        assert_eq!(e.condorcet_winner(), None);
        // Fully symmetric: all Borda scores equal.
        assert_eq!(e.borda_scores(), &[3, 3, 3]);
    }

    #[test]
    fn borda_conservation_on_random_votes() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 9usize;
        let votes: Vec<Ranking> = (0..200).map(|_| Ranking::random(n, &mut rng)).collect();
        let e = Election::from_votes(n, &votes);
        let total: u64 = e.borda_scores().iter().sum();
        assert_eq!(total, 200 * (n as u64) * (n as u64 - 1) / 2);
        // Maximin never exceeds m.
        assert!(e.maximin_scores().iter().all(|&s| s <= 200));
    }
}
