//! Streaming (ε, φ)-List Borda (Theorem 5).
//!
//! The algorithm is sampling plus exact per-candidate counting: select
//! each vote with probability `p = Θ(ℓ/m)` where
//! `ℓ = 6ε⁻² log(6n/δ)` and "store for every i ∈ \[n\], the number of
//! candidates that candidate i beats in the vote" — i.e. `n` exact Borda
//! counters over the sampled votes. A Chernoff + union bound over the `n`
//! candidates gives every score to ±εmn simultaneously. Space:
//! `O(n(log n + log ε⁻¹ + log log δ⁻¹) + log log m)` bits — the counters
//! hold values up to `11ℓn`, hence the `log` terms.

use crate::ranking::Ranking;
use crate::VoteSummary;
use hh_core::{ItemEstimate, ParamError, Report};
use hh_sampling::SkipSampler;
use hh_space::{SpaceUsage, VarCounterArray};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 5's streaming Borda-score estimator.
#[derive(Debug, Clone)]
pub struct StreamingBorda {
    n: usize,
    eps: f64,
    phi: f64,
    sampler: SkipSampler,
    p: f64,
    /// Per-candidate Borda score over the sampled votes.
    scores: VarCounterArray,
    samples: u64,
    rng: StdRng,
}

impl StreamingBorda {
    /// Estimator for `n` candidates over an advertised `m`-vote stream:
    /// every Borda score to ±εmn with probability 1 − δ; the list query
    /// reports at threshold φmn.
    pub fn new(
        n: usize,
        eps: f64,
        phi: f64,
        delta: f64,
        m: u64,
        seed: u64,
    ) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::EmptyUniverse);
        }
        if m == 0 {
            return Err(ParamError::ZeroLength);
        }
        if !(eps > 0.0 && eps < 1.0 && eps.is_finite()) {
            return Err(ParamError::EpsOutOfRange(eps));
        }
        if !(phi > eps && phi <= 1.0) {
            return Err(ParamError::PhiOutOfRange(phi));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(ParamError::DeltaOutOfRange(delta));
        }
        // ℓ = 6ε⁻² ln(6n/δ) (Theorem 5), with the same 2× pre-rounding
        // margin used throughout the workspace.
        let ell = (6.0 * (6.0 * n as f64 / delta).ln() / (eps * eps)).ceil();
        let sampler = SkipSampler::with_probability((2.0 * ell / m as f64).min(1.0));
        let p = sampler.probability();
        Ok(Self {
            n,
            eps,
            phi,
            sampler,
            p,
            scores: VarCounterArray::new(n),
            samples: 0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Number of candidates.
    pub fn candidates(&self) -> usize {
        self.n
    }

    /// Votes sampled so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The realized sampling probability.
    pub fn sampling_probability(&self) -> f64 {
        self.p
    }

    /// Estimated Borda score of every candidate (scaled to the full
    /// stream): `ŝ(i) = score_in_sample(i) / p`.
    pub fn score_estimates(&self) -> Vec<f64> {
        self.scores.iter().map(|c| c as f64 / self.p).collect()
    }

    /// The estimated Borda winner with its score — the ε-Borda output
    /// (Definition 7).
    pub fn winner(&self) -> Option<ItemEstimate> {
        if self.samples == 0 {
            return None;
        }
        self.scores.argmax().map(|i| ItemEstimate {
            item: i as u64,
            count: self.scores.get(i) as f64 / self.p,
        })
    }

    /// The (ε, φ)-List Borda output (Definition 6): every candidate whose
    /// estimated score clears `(φ − ε/2)·ŝ_max_norm` where the
    /// normalization is `s·n` over the sampled votes.
    pub fn list_report(&self) -> Report {
        if self.samples == 0 {
            return Report::default();
        }
        let threshold = (self.phi - self.eps / 2.0) * self.samples as f64 * self.n as f64;
        (0..self.n)
            .filter_map(|i| {
                let c = self.scores.get(i) as f64;
                (c >= threshold).then_some(ItemEstimate {
                    item: i as u64,
                    count: c / self.p,
                })
            })
            .collect()
    }
}

impl VoteSummary for StreamingBorda {
    fn insert_vote(&mut self, vote: &Ranking) {
        assert_eq!(vote.len(), self.n, "vote arity mismatch");
        if !self.sampler.accept(&mut self.rng) {
            return;
        }
        self.samples += 1;
        // Exact Borda update: candidate at rank i beats n−1−i others.
        for (i, &c) in vote.order().iter().enumerate() {
            self.scores.add(c as usize, (self.n - 1 - i) as u64);
        }
    }
}

impl SpaceUsage for StreamingBorda {
    fn model_bits(&self) -> u64 {
        // n gamma-coded counters (values ≤ s·n ⇒ Θ(log n + log ℓ) bits
        // each) plus the sampler.
        self.scores.model_bits() + self.sampler.model_bits()
    }
    fn heap_bytes(&self) -> usize {
        self.scores.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::election::Election;
    use crate::ranking::MallowsModel;

    fn mallows_votes(n: usize, m: usize, dispersion: f64, seed: u64) -> Vec<Ranking> {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MallowsModel::new(Ranking::identity(n), dispersion);
        (0..m).map(|_| model.sample(&mut rng)).collect()
    }

    #[test]
    fn scores_within_eps_mn_of_truth() {
        let n = 10usize;
        let m = 30_000usize;
        let votes = mallows_votes(n, m, 0.7, 1);
        let truth = Election::from_votes(n, &votes);
        let mut sb = StreamingBorda::new(n, 0.05, 0.5, 0.1, m as u64, 2).unwrap();
        sb.insert_votes(&votes);
        let est = sb.score_estimates();
        let budget = 0.05 * m as f64 * n as f64;
        for (c, &e) in est.iter().enumerate() {
            let t = truth.borda_scores()[c] as f64;
            assert!((e - t).abs() <= budget, "candidate {c}: est {e} truth {t}");
        }
    }

    #[test]
    fn winner_matches_exact_on_concentrated_votes() {
        let n = 8usize;
        let m = 20_000usize;
        let votes = mallows_votes(n, m, 0.5, 3);
        let truth = Election::from_votes(n, &votes);
        let mut sb = StreamingBorda::new(n, 0.05, 0.5, 0.1, m as u64, 4).unwrap();
        sb.insert_votes(&votes);
        assert_eq!(
            sb.winner().unwrap().item,
            truth.borda_winner().unwrap() as u64,
            "Mallows center should win both exactly and in the stream"
        );
    }

    #[test]
    fn list_reports_only_high_scorers() {
        // Two-candidate election: with all votes 0 ≻ 1, candidate 0 has
        // the full score mass.
        let n = 2usize;
        let m = 5_000usize;
        let votes: Vec<Ranking> = (0..m).map(|_| Ranking::identity(2)).collect();
        let mut sb = StreamingBorda::new(n, 0.1, 0.4, 0.1, m as u64, 5).unwrap();
        sb.insert_votes(&votes);
        let r = sb.list_report();
        assert!(r.contains(0), "dominant candidate missing");
        assert!(!r.contains(1), "zero-score candidate reported");
    }

    #[test]
    fn space_is_linear_in_n_not_in_m() {
        let n = 64usize;
        let m = 1 << 22;
        let mut sb = StreamingBorda::new(n, 0.1, 0.5, 0.1, m, 6).unwrap();
        let votes = mallows_votes(n, 2000, 1.0, 7);
        sb.insert_votes(&votes);
        // Counters: n × O(log n + log ℓ); generous cap at 64 bits each.
        assert!(sb.model_bits() < (n as u64) * 64 + 64);
    }

    #[test]
    fn constructor_validates() {
        assert!(StreamingBorda::new(0, 0.1, 0.3, 0.1, 10, 0).is_err());
        assert!(StreamingBorda::new(5, 0.0, 0.3, 0.1, 10, 0).is_err());
        assert!(StreamingBorda::new(5, 0.4, 0.3, 0.1, 10, 0).is_err());
        assert!(StreamingBorda::new(5, 0.1, 0.3, 0.1, 0, 0).is_err());
    }
}
