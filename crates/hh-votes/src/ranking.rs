//! Rankings (permutations of the candidate set) and vote models.
//!
//! §2.1: "In the context of voting, the input data is an insertion-only
//! stream over the universe of all possible rankings (permutations)."
//! Uniform rankings (the *impartial culture* of social choice) carry no
//! signal; the [`MallowsModel`] concentrates around a center ranking with
//! geometric dispersion, and [`PlackettLuce`] draws candidates by weight —
//! both are standard vote models and give the experiments workloads where
//! the true winner is designed.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A total order of candidates `0..n`: `order[0]` is the most preferred.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ranking {
    order: Vec<u32>,
}

impl Ranking {
    /// Validates that `order` is a permutation of `0..order.len()`.
    pub fn new(order: Vec<u32>) -> Result<Self, String> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &c in &order {
            if (c as usize) >= n {
                return Err(format!("candidate {c} out of range for n={n}"));
            }
            if seen[c as usize] {
                return Err(format!("candidate {c} appears twice"));
            }
            seen[c as usize] = true;
        }
        Ok(Self { order })
    }

    /// The identity ranking `0 ≻ 1 ≻ … ≻ n−1`.
    pub fn identity(n: usize) -> Self {
        Self {
            order: (0..n as u32).collect(),
        }
    }

    /// A uniformly random ranking (impartial culture).
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        use rand::seq::SliceRandom;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        Self { order }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ranking is over zero candidates.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Candidate at rank `pos` (0 = most preferred).
    pub fn at(&self, pos: usize) -> u32 {
        self.order[pos]
    }

    /// The most preferred candidate.
    pub fn top(&self) -> u32 {
        self.order[0]
    }

    /// The least preferred candidate.
    pub fn bottom(&self) -> u32 {
        *self.order.last().expect("non-empty ranking")
    }

    /// The full order, most preferred first.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Position of each candidate: `positions()[c]` is the rank of `c`.
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = vec![0u32; self.order.len()];
        for (i, &c) in self.order.iter().enumerate() {
            pos[c as usize] = i as u32;
        }
        pos
    }

    /// Whether candidate `a` is ranked ahead of candidate `b`.
    pub fn prefers(&self, a: u32, b: u32) -> bool {
        let pos = self.positions();
        pos[a as usize] < pos[b as usize]
    }

    /// The Borda contribution of candidate `c` in this vote: the number
    /// of candidates ranked behind `c` (Definition 6's scoring).
    pub fn borda_contribution(&self, c: u32) -> u64 {
        let pos = self.positions()[c as usize] as u64;
        (self.order.len() as u64 - 1) - pos
    }

    /// Kendall-tau distance to another ranking (number of discordant
    /// pairs) — the Mallows model's metric.
    pub fn kendall_tau(&self, other: &Ranking) -> u64 {
        assert_eq!(self.len(), other.len(), "rankings must share n");
        let pos = other.positions();
        // Count inversions of self mapped through other's positions.
        let mapped: Vec<u32> = self.order.iter().map(|&c| pos[c as usize]).collect();
        let mut inversions = 0u64;
        for i in 0..mapped.len() {
            for j in (i + 1)..mapped.len() {
                if mapped[i] > mapped[j] {
                    inversions += 1;
                }
            }
        }
        inversions
    }
}

/// The Mallows model: `Pr[π] ∝ dispersion^{d_KT(π, center)}`.
///
/// Sampled by the repeated-insertion method (RIM): candidates are taken
/// in center order and inserted into the growing ranking, position drawn
/// with geometrically decaying weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MallowsModel {
    center: Ranking,
    dispersion: f64,
}

impl MallowsModel {
    /// Mallows model around `center` with `dispersion ∈ (0, 1]`;
    /// dispersion 1 is uniform, dispersion → 0 concentrates on the
    /// center.
    pub fn new(center: Ranking, dispersion: f64) -> Self {
        assert!(
            dispersion > 0.0 && dispersion <= 1.0,
            "dispersion must be in (0, 1]"
        );
        Self { center, dispersion }
    }

    /// The center ranking.
    pub fn center(&self) -> &Ranking {
        &self.center
    }

    /// Draws one vote.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ranking {
        let n = self.center.len();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        for i in 0..n {
            let c = self.center.at(i);
            // Insert at position j ∈ 0..=i with weight dispersion^(i−j):
            // j = i (the back, agreeing with the center) has weight 1.
            let mut weights = Vec::with_capacity(i + 1);
            let mut w = 1.0f64;
            for _ in 0..=i {
                weights.push(w);
                w *= self.dispersion;
            }
            weights.reverse(); // weights[j] = dispersion^(i−j)
            let total: f64 = weights.iter().sum();
            let mut u = rng.gen::<f64>() * total;
            let mut j = i;
            for (idx, &wj) in weights.iter().enumerate() {
                if u < wj {
                    j = idx;
                    break;
                }
                u -= wj;
            }
            order.insert(j, c);
        }
        Ranking { order }
    }
}

/// The Plackett–Luce model: candidates drawn without replacement with
/// probability proportional to their weight.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlackettLuce {
    weights: Vec<f64>,
}

impl PlackettLuce {
    /// Model with one positive weight per candidate.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one candidate");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive"
        );
        Self { weights }
    }

    /// Number of candidates.
    pub fn candidates(&self) -> usize {
        self.weights.len()
    }

    /// Draws one vote.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ranking {
        let n = self.weights.len();
        let mut remaining: Vec<u32> = (0..n as u32).collect();
        let mut weights: Vec<f64> = self.weights.clone();
        let mut order = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let total: f64 = weights.iter().sum();
            let mut u = rng.gen::<f64>() * total;
            let mut pick = remaining.len() - 1;
            for (idx, &w) in weights.iter().enumerate() {
                if u < w {
                    pick = idx;
                    break;
                }
                u -= w;
            }
            order.push(remaining.swap_remove(pick));
            weights.swap_remove(pick);
        }
        Ranking { order }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation_rejects_bad_permutations() {
        assert!(Ranking::new(vec![0, 1, 2]).is_ok());
        assert!(Ranking::new(vec![0, 0, 2]).is_err());
        assert!(Ranking::new(vec![0, 3, 1]).is_err());
        assert!(Ranking::new(vec![]).is_ok());
    }

    #[test]
    fn positions_invert_order() {
        let r = Ranking::new(vec![2, 0, 3, 1]).unwrap();
        assert_eq!(r.positions(), vec![1, 3, 0, 2]);
        assert_eq!(r.top(), 2);
        assert_eq!(r.bottom(), 1);
        assert!(r.prefers(2, 0));
        assert!(!r.prefers(1, 3));
    }

    #[test]
    fn borda_contribution_counts_beaten() {
        let r = Ranking::new(vec![2, 0, 3, 1]).unwrap();
        assert_eq!(r.borda_contribution(2), 3);
        assert_eq!(r.borda_contribution(0), 2);
        assert_eq!(r.borda_contribution(3), 1);
        assert_eq!(r.borda_contribution(1), 0);
    }

    #[test]
    fn kendall_tau_basics() {
        let id = Ranking::identity(4);
        assert_eq!(id.kendall_tau(&id), 0);
        let rev = Ranking::new(vec![3, 2, 1, 0]).unwrap();
        assert_eq!(id.kendall_tau(&rev), 6); // n(n−1)/2
        let one_swap = Ranking::new(vec![1, 0, 2, 3]).unwrap();
        assert_eq!(id.kendall_tau(&one_swap), 1);
        assert_eq!(one_swap.kendall_tau(&id), 1); // symmetric
    }

    #[test]
    fn random_rankings_are_valid_and_diverse() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Ranking::random(20, &mut rng);
        let b = Ranking::random(20, &mut rng);
        assert_eq!(a.len(), 20);
        assert!(Ranking::new(a.order().to_vec()).is_ok());
        assert_ne!(a, b, "two random 20-rankings should differ");
    }

    #[test]
    fn mallows_concentrates_near_center() {
        let mut rng = StdRng::seed_from_u64(2);
        let center = Ranking::identity(8);
        let tight = MallowsModel::new(center.clone(), 0.2);
        let loose = MallowsModel::new(center.clone(), 1.0);
        let avg_dist = |model: &MallowsModel, rng: &mut StdRng| -> f64 {
            (0..300)
                .map(|_| model.sample(rng).kendall_tau(&center) as f64)
                .sum::<f64>()
                / 300.0
        };
        let d_tight = avg_dist(&tight, &mut rng);
        let d_loose = avg_dist(&loose, &mut rng);
        assert!(
            d_tight < d_loose / 2.0,
            "tight {d_tight} should be well under loose {d_loose}"
        );
        // Uniform average Kendall distance is n(n−1)/4 = 14.
        assert!((d_loose - 14.0).abs() < 2.0, "loose {d_loose}");
    }

    #[test]
    fn mallows_dispersion_one_is_uniform_on_top_choice() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = MallowsModel::new(Ranking::identity(4), 1.0);
        let mut tops = [0u32; 4];
        for _ in 0..8000 {
            tops[model.sample(&mut rng).top() as usize] += 1;
        }
        for (c, &t) in tops.iter().enumerate() {
            assert!((1600..=2400).contains(&t), "candidate {c}: {t}");
        }
    }

    #[test]
    fn plackett_luce_favors_heavy_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = PlackettLuce::new(vec![8.0, 1.0, 1.0]);
        let mut top0 = 0;
        let trials = 5000;
        for _ in 0..trials {
            if model.sample(&mut rng).top() == 0 {
                top0 += 1;
            }
        }
        let frac = top0 as f64 / trials as f64;
        assert!((frac - 0.8).abs() < 0.04, "top-0 fraction {frac}");
    }

    #[test]
    fn plackett_luce_produces_valid_permutations() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = PlackettLuce::new(vec![1.0; 12]);
        for _ in 0..50 {
            let r = model.sample(&mut rng);
            assert!(Ranking::new(r.order().to_vec()).is_ok());
        }
    }
}
