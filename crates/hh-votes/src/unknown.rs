//! Unknown stream length for the voting algorithms (Theorem 8).
//!
//! "There are randomized one-pass algorithms for ε-Minimum, (ε,φ)-Borda,
//! and (ε,φ)-Maximin problems ... even when the length of the stream is
//! not known beforehand" — by the same instance-doubling technique as
//! Theorem 7. [`UnknownBorda`] implements it for Borda: two live
//! [`StreamingBorda`] instances at geometrically spaced sampling rates, a
//! Morris counter tracking the position in `O(log log m)` bits, reporting
//! from the older instance.

use crate::borda::StreamingBorda;
use crate::ranking::Ranking;
use crate::VoteSummary;
use hh_core::{ItemEstimate, ParamError};
use hh_sampling::MorrisCounter;
use hh_space::SpaceUsage;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 8's unknown-length (ε, φ)-Borda estimator.
#[derive(Debug, Clone)]
pub struct UnknownBorda {
    n: usize,
    eps: f64,
    phi: f64,
    delta: f64,
    morris: MorrisCounter,
    g: f64,
    epoch: u32,
    older: StreamingBorda,
    newer: StreamingBorda,
    next_trigger: f64,
    base: f64,
    seed: u64,
    rng: StdRng,
}

const TRIGGER_MARGIN: f64 = 2.0;

impl UnknownBorda {
    /// Estimator for `n` candidates with unknown stream length.
    pub fn new(n: usize, eps: f64, phi: f64, delta: f64, seed: u64) -> Result<Self, ParamError> {
        // Inner instances at ε/2; growth g = Θ(1/ε) bounds the discarded
        // prefix below ε/4 of the stream.
        let eps_inner = eps / 2.0;
        let base = (6.0 * (6.0 * n as f64 / delta).ln() / (eps_inner * eps_inner)).ceil();
        let g = (16.0 / eps).max(4.0);
        let older = Self::spawn(n, eps_inner, phi, delta, seed, 0, g, base)?;
        let newer = Self::spawn(n, eps_inner, phi, delta, seed, 1, g, base)?;
        Ok(Self {
            n,
            eps,
            phi,
            delta,
            morris: MorrisCounter::with_copies(2.0, 32),
            g,
            epoch: 0,
            older,
            newer,
            next_trigger: TRIGGER_MARGIN * base * g,
            base,
            seed,
            rng: StdRng::seed_from_u64(seed ^ 0xB0DA),
        })
    }

    #[allow(clippy::too_many_arguments)] // private helper mirroring the paper's parameter list
    fn spawn(
        n: usize,
        eps_inner: f64,
        phi: f64,
        delta: f64,
        seed: u64,
        k: u32,
        g: f64,
        base: f64,
    ) -> Result<StreamingBorda, ParamError> {
        // Advertised length for instance k: τ_{k+1}/2 so its probability
        // lands at p_k = min(1, 2·2ℓ/τ_{k+1}) ≈ 2g^{1−k}-flavored rates.
        let m_k = (base * g.powi(k as i32)).max(1.0) as u64;
        StreamingBorda::new(
            n,
            eps_inner,
            phi,
            delta / 2.0,
            m_k,
            seed.wrapping_mul(0x5851_F42D).wrapping_add(k as u64),
        )
    }

    /// Position estimate from the Morris counter.
    pub fn position_estimate(&self) -> f64 {
        self.morris.estimate()
    }

    /// Current epoch index.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Estimated Borda winner (Definition 7's ε-Borda output).
    pub fn winner(&self) -> Option<ItemEstimate> {
        self.older.winner()
    }

    /// Estimated Borda scores for every candidate.
    pub fn score_estimates(&self) -> Vec<f64> {
        self.older.score_estimates()
    }

    fn maybe_advance(&mut self) {
        while self.morris.estimate() >= self.next_trigger {
            self.epoch += 1;
            let spawned = Self::spawn(
                self.n,
                self.eps / 2.0,
                self.phi,
                self.delta,
                self.seed,
                self.epoch + 1,
                self.g,
                self.base,
            )
            .expect("parameters validated at construction");
            self.older = std::mem::replace(&mut self.newer, spawned);
            self.next_trigger *= self.g;
        }
    }
}

impl VoteSummary for UnknownBorda {
    fn insert_vote(&mut self, vote: &Ranking) {
        self.morris.increment(&mut self.rng);
        self.older.insert_vote(vote);
        self.newer.insert_vote(vote);
        self.maybe_advance();
    }
}

impl SpaceUsage for UnknownBorda {
    fn model_bits(&self) -> u64 {
        self.older.model_bits() + self.newer.model_bits() + self.morris.model_bits()
    }
    fn heap_bytes(&self) -> usize {
        self.older.heap_bytes() + self.newer.heap_bytes() + self.morris.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::election::Election;
    use crate::ranking::MallowsModel;

    fn mallows_votes(n: usize, m: usize, dispersion: f64, seed: u64) -> Vec<Ranking> {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MallowsModel::new(Ranking::identity(n), dispersion);
        (0..m).map(|_| model.sample(&mut rng)).collect()
    }

    #[test]
    fn finds_winner_without_knowing_length() {
        let n = 6usize;
        for m in [3_000usize, 60_000] {
            let votes = mallows_votes(n, m, 0.5, m as u64);
            let truth = Election::from_votes(n, &votes);
            let mut ub = UnknownBorda::new(n, 0.1, 0.5, 0.1, 7).unwrap();
            ub.insert_votes(&votes);
            let w = ub.winner().unwrap();
            assert_eq!(
                w.item,
                truth.borda_winner().unwrap() as u64,
                "m={m}: wrong winner"
            );
            // Score within εmn.
            let exact = truth.borda_scores()[w.item as usize] as f64;
            assert!(
                (w.count - exact).abs() <= 0.1 * (m * n) as f64,
                "m={m}: est {} exact {exact}",
                w.count
            );
        }
    }

    #[test]
    fn position_tracking_is_loglog() {
        let n = 4usize;
        let votes = mallows_votes(n, 50_000, 1.0, 1);
        let mut ub = UnknownBorda::new(n, 0.2, 0.6, 0.1, 2).unwrap();
        ub.insert_votes(&votes);
        assert!(ub.morris.model_bits() < 512);
        let est = ub.position_estimate();
        assert!(est > 12_000.0 && est < 200_000.0, "position {est}");
    }
}
