//! Plurality and veto winners as heavy-hitter problems.
//!
//! §1.2: "Finding items with maximum and minimum frequencies in a stream
//! correspond to finding winners under plurality and veto voting rules
//! respectively" — and footnote 2 notes the very first heavy-hitters
//! paper \[Moo81\] was posed as a voting problem. These adapters project a
//! vote stream onto an item stream (first- or last-ranked candidate) and
//! delegate to the paper's ε-Maximum / ε-Minimum algorithms, giving
//! approximate plurality/veto winners in heavy-hitter space budgets.

use crate::ranking::Ranking;
use crate::VoteSummary;
use hh_core::{EpsMaximum, EpsMinimum, ItemEstimate, ParamError, StreamSummary};
use hh_space::SpaceUsage;

/// Approximate plurality winner: ε-Maximum over top-ranked candidates.
#[derive(Debug, Clone)]
pub struct PluralityAdapter {
    inner: EpsMaximum,
}

impl PluralityAdapter {
    /// Adapter over `n` candidates for an advertised `m`-vote stream:
    /// returns a candidate whose first-place count is within εm of the
    /// plurality winner's.
    pub fn new(n: usize, eps: f64, delta: f64, m: u64, seed: u64) -> Result<Self, ParamError> {
        Ok(Self {
            inner: EpsMaximum::new(eps, delta, n as u64, m, seed)?,
        })
    }

    /// The approximate plurality winner with its estimated first-place
    /// count.
    pub fn winner(&self) -> Option<ItemEstimate> {
        self.inner.max_estimate()
    }
}

impl VoteSummary for PluralityAdapter {
    fn insert_vote(&mut self, vote: &Ranking) {
        self.inner.insert(vote.top() as u64);
    }
}

impl SpaceUsage for PluralityAdapter {
    fn model_bits(&self) -> u64 {
        self.inner.model_bits()
    }
    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

/// Approximate veto winner: ε-Minimum over last-ranked candidates
/// ("frequencies correspond to number of dislikes").
#[derive(Debug, Clone)]
pub struct VetoAdapter {
    inner: EpsMinimum,
}

impl VetoAdapter {
    /// Adapter over `n` candidates for an advertised `m`-vote stream:
    /// returns a candidate whose last-place count is within εm of the
    /// fewest.
    pub fn new(n: usize, eps: f64, delta: f64, m: u64, seed: u64) -> Result<Self, ParamError> {
        Ok(Self {
            inner: EpsMinimum::new(eps, delta, n as u64, m, seed)?,
        })
    }

    /// The approximate veto winner (fewest last places) with its
    /// estimated dislike count.
    pub fn winner(&self) -> ItemEstimate {
        self.inner.min_estimate()
    }
}

impl VoteSummary for VetoAdapter {
    fn insert_vote(&mut self, vote: &Ranking) {
        self.inner.insert(vote.bottom() as u64);
    }
}

impl SpaceUsage for VetoAdapter {
    fn model_bits(&self) -> u64 {
        self.inner.model_bits()
    }
    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::election::Election;
    use crate::ranking::MallowsModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mallows_votes(n: usize, m: usize, dispersion: f64, seed: u64) -> Vec<Ranking> {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MallowsModel::new(Ranking::identity(n), dispersion);
        (0..m).map(|_| model.sample(&mut rng)).collect()
    }

    #[test]
    fn plurality_adapter_finds_clear_winner() {
        let n = 8usize;
        let m = 40_000usize;
        let votes = mallows_votes(n, m, 0.5, 1);
        let truth = Election::from_votes(n, &votes);
        let mut pa = PluralityAdapter::new(n, 0.05, 0.1, m as u64, 2).unwrap();
        pa.insert_votes(&votes);
        let w = pa.winner().unwrap();
        assert_eq!(w.item as u32, truth.plurality_winner().unwrap());
        let exact = truth.plurality_scores()[w.item as usize] as f64;
        assert!((w.count - exact).abs() <= 0.05 * m as f64);
    }

    #[test]
    fn veto_adapter_avoids_disliked_candidates() {
        // Mallows around identity: candidate n−1 is bottom most often,
        // candidate 0 almost never. The veto winner should have few last
        // places.
        let n = 8usize;
        let m = 40_000usize;
        let votes = mallows_votes(n, m, 0.5, 3);
        let truth = Election::from_votes(n, &votes);
        let mut va = VetoAdapter::new(n, 0.04, 0.2, m as u64, 4).unwrap();
        va.insert_votes(&votes);
        let w = va.winner();
        let min_last = truth.veto_scores().iter().min().copied().unwrap();
        let got_last = truth.veto_scores()[w.item as usize];
        assert!(
            got_last as f64 <= min_last as f64 + 0.04 * m as f64,
            "veto winner {} has {} last places vs best {}",
            w.item,
            got_last,
            min_last
        );
    }

    #[test]
    fn adapters_use_heavy_hitter_space() {
        let n = 8usize;
        let m = 1u64 << 20;
        let pa = PluralityAdapter::new(n, 0.1, 0.1, m, 5).unwrap();
        let va = VetoAdapter::new(n, 0.1, 0.2, m, 6).unwrap();
        // Both are far below storing any votes: well under a kilobit for
        // these parameters… plurality uses the dense backend (n=8 < 4/ε).
        assert!(pa.model_bits() < 1024, "plurality {}", pa.model_bits());
        assert!(va.model_bits() < 4096, "veto {}", va.model_bits());
    }
}
