//! Offline vendored mini-`criterion`: a functional benchmark harness
//! exposing the subset of the criterion 0.5 API this workspace uses
//! (`Criterion`, groups, `Throughput`, `BenchmarkId`, `iter` /
//! `iter_batched`, the `criterion_group!` / `criterion_main!` macros).
//!
//! Unlike upstream it does no statistical analysis — each benchmark
//! reports the mean and best wall-clock time over `sample_size`
//! samples, with warm-up. Results print to stdout; set the
//! `CRITERION_JSON` environment variable to a path to also write them
//! as a JSON array (one object per benchmark), which `scripts/bench.sh`
//! uses to record the perf trajectory.
//!
//! Passing `--test` (as `cargo test` does for bench targets) runs each
//! routine once and skips measurement.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    id: String,
    mean_ns: f64,
    best_ns: f64,
    samples: usize,
    throughput: Option<Throughput>,
}

/// The benchmark driver: configuration plus collected results.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    records: Vec<Record>,
    /// Host facts recorded alongside the measurements (core count,
    /// etc.), written as `{"group": "_meta", "id": key, "value": v}`
    /// lines so downstream tooling can condition comparisons on them.
    metadata: Vec<(String, f64)>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            records: Vec::new(),
            metadata: Vec::new(),
            test_mode: args.iter().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Applies command-line filters (a no-op beyond `--test` detection,
    /// which [`Criterion::default`] already performs).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Records a host fact (e.g. `host_cores`) to be written alongside
    /// the benchmark records as a `{"group": "_meta", "id": key,
    /// "value": v}` line. Scaling-sensitive comparisons key off these:
    /// `bench_compare` refuses to rate a thread-scaling record against
    /// a baseline taken on a host with a different core count.
    /// Re-recording a key replaces its value.
    pub fn record_metadata(&mut self, key: &str, value: f64) {
        self.metadata.retain(|(k, _)| k != key);
        self.metadata.push((key.to_string(), value));
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = RunCfg {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        self.run_one(String::new(), id.to_string(), None, cfg, f);
        self
    }

    fn run_one<F>(
        &mut self,
        group: String,
        id: String,
        throughput: Option<Throughput>,
        cfg: RunCfg,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: cfg.sample_size,
            measurement_time: cfg.measurement_time,
            warm_up_time: self.warm_up_time,
            test_mode: self.test_mode,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test-mode ok: {group}/{id}");
            return;
        }
        let samples = &bencher.samples_ns;
        assert!(
            !samples.is_empty(),
            "benchmark {group}/{id} never called Bencher::iter"
        );
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        let best_ns = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let record = Record {
            group: group.clone(),
            id: id.clone(),
            mean_ns,
            best_ns,
            samples: samples.len(),
            throughput,
        };
        let label = if group.is_empty() {
            id
        } else {
            format!("{group}/{id}")
        };
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (mean_ns * 1e-9);
                println!(
                    "{label:<40} {:>12.1} ns/iter  {:>14.0} elem/s",
                    mean_ns, rate
                );
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (mean_ns * 1e-9);
                println!("{label:<40} {:>12.1} ns/iter  {:>14.0} B/s", mean_ns, rate);
            }
            None => println!("{label:<40} {:>12.1} ns/iter", mean_ns),
        }
        self.records.push(record);
    }

    /// One record as a JSON object (no trailing comma/newline).
    fn render_record(r: &Record) -> String {
        let (tp_kind, tp_count) = match r.throughput {
            Some(Throughput::Elements(n)) => ("\"elements\"".to_string(), n.to_string()),
            Some(Throughput::Bytes(n)) => ("\"bytes\"".to_string(), n.to_string()),
            None => ("null".to_string(), "null".to_string()),
        };
        format!(
            "{{\"group\": {:?}, \"id\": {:?}, \"mean_ns\": {:.1}, \"best_ns\": {:.1}, \
             \"samples\": {}, \"throughput_kind\": {}, \"throughput\": {}}}",
            r.group, r.id, r.mean_ns, r.best_ns, r.samples, tp_kind, tp_count,
        )
    }

    /// The `(group, id)` key of a rendered record line, if it is one.
    /// Only parses this module's own one-record-per-line output; group
    /// and id are benchmark names, which contain no quotes.
    fn record_key(line: &str) -> Option<(String, String)> {
        let group = line.split("\"group\": \"").nth(1)?.split('\"').next()?;
        let id = line.split("\"id\": \"").nth(1)?.split('\"').next()?;
        Some((group.to_string(), id.to_string()))
    }

    /// Writes collected results as JSON to `path`. If `path` already
    /// holds records from an earlier run or another bench target, they
    /// are kept and records with the same `(group, id)` are replaced —
    /// so `CRITERION_JSON=perf.json cargo bench` accumulates across
    /// all bench binaries instead of keeping only the last one's.
    fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut fresh: Vec<(String, String)> = self
            .records
            .iter()
            .map(|r| (r.group.clone(), r.id.clone()))
            .collect();
        fresh.extend(
            self.metadata
                .iter()
                .map(|(k, _)| ("_meta".to_string(), k.clone())),
        );
        let mut lines: Vec<String> = match fs::read_to_string(path) {
            Ok(existing) => existing
                .lines()
                .filter_map(|l| {
                    let key = Self::record_key(l)?;
                    if fresh.contains(&key) {
                        None
                    } else {
                        Some(l.trim().trim_end_matches(',').to_string())
                    }
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        lines.extend(self.records.iter().map(Self::render_record));
        lines.extend(
            self.metadata
                .iter()
                .map(|(k, v)| format!("{{\"group\": \"_meta\", \"id\": {k:?}, \"value\": {v}}}")),
        );
        let mut out = String::from("[\n");
        for (i, line) in lines.iter().enumerate() {
            out.push_str("  ");
            out.push_str(line);
            if i + 1 != lines.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        fs::write(path, out)
    }

    /// Prints the summary and honors `CRITERION_JSON`. Called by
    /// [`criterion_main!`] after all groups have run.
    ///
    /// # Panics
    /// If `CRITERION_JSON` names a path that cannot be written — a
    /// silently missing perf record is worse than a failed bench run.
    pub fn final_summary(&self) {
        if self.test_mode {
            return;
        }
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                match self.write_json(&path) {
                    Ok(()) => println!("wrote {} benchmark records to {path}", self.records.len()),
                    Err(e) => panic!("CRITERION_JSON write to {path} failed: {e}"),
                }
            }
        }
    }
}

/// How work per iteration is counted for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`]; the mini harness
/// takes it as documentation only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input (setup dominates; batches of one).
    LargeInput,
    /// Input of the same order as the routine's working set.
    PerIteration,
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// Builds `"{function_name}/{parameter}"`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            rendered: parameter.to_string(),
        }
    }
}

/// Anything accepted in benchmark-id position.
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.rendered
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Effective per-run measurement settings.
#[derive(Clone, Copy)]
struct RunCfg {
    sample_size: usize,
    measurement_time: Duration,
}

/// A named group of benchmarks sharing throughput and measurement
/// configuration. Overrides are scoped to the group, as in upstream
/// criterion — they never leak into later groups.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput counting for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement budget for this group only.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    fn cfg(&self) -> RunCfg {
        RunCfg {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let throughput = self.throughput;
        let cfg = self.cfg();
        self.criterion
            .run_one(self.name.clone(), id.into_id(), throughput, cfg, f);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let throughput = self.throughput;
        let cfg = self.cfg();
        self.criterion
            .run_one(self.name.clone(), id.into_id(), throughput, cfg, |b| {
                f(b, input)
            });
        self
    }

    /// Ends the group (display bookkeeping only).
    pub fn finish(&mut self) {}
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called in timed batches after warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.samples_ns.push(0.0);
            return;
        }
        // Warm-up, and estimate the per-call cost to size timing batches.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_calls == 0 {
            black_box(routine());
            warm_calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_calls as f64;
        // Size batches so one sample costs ≈ 1ms and the whole
        // measurement fits the time budget.
        let batch = ((1e-3 / per_call.max(1e-9)) as u64).clamp(1, 1 << 20);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / batch as f64);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup cost is
    /// excluded from the timing.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.samples_ns.push(0.0);
            return;
        }
        // One warm-up call.
        black_box(routine(setup()));
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_secs_f64() * 1e9);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by `&mut`.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

/// Declares a group of benchmark functions, mirroring criterion's two
/// macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() -> $crate::Criterion {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
            criterion
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                let criterion = $group();
                criterion.final_summary();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_samples_and_json() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        // Force measurement even under `cargo test` (which passes --test
        // to the harness binary, not to unit tests, but stay explicit).
        c.test_mode = false;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[1].id, "param/4");
        assert!(c.records.iter().all(|r| r.mean_ns >= 0.0));

        let path = std::env::temp_dir().join("mini_criterion_test.json");
        c.write_json(path.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"group\": \"g\""));
        assert!(text.trim_start().starts_with('['));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_merge_accumulates_across_instances() {
        let path = std::env::temp_dir().join("mini_criterion_merge_test.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let make = |group: &str, mean: f64| {
            let mut c = Criterion {
                test_mode: false,
                ..Criterion::default()
            };
            c.records.push(Record {
                group: group.to_string(),
                id: "r".to_string(),
                mean_ns: mean,
                best_ns: mean,
                samples: 1,
                throughput: None,
            });
            c
        };
        // Two bench targets writing to the same file must both survive.
        make("first", 1.0).write_json(path).unwrap();
        make("second", 2.0).write_json(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(
            text.contains("\"first\"") && text.contains("\"second\""),
            "{text}"
        );
        // Re-running a target replaces its own records instead of duplicating.
        make("second", 3.0).write_json(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.matches("\"second\"").count(), 1, "{text}");
        assert!(text.contains("\"mean_ns\": 3.0"), "{text}");
        assert!(text.trim_end().ends_with(']'));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn metadata_lines_round_trip_and_merge() {
        let path = std::env::temp_dir().join("mini_criterion_meta_test.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let mut c = Criterion {
            test_mode: false,
            ..Criterion::default()
        };
        c.record_metadata("host_cores", 1.0);
        c.record_metadata("host_cores", 4.0); // same-run re-record replaces
        c.write_json(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.matches("\"host_cores\"").count(), 1, "{text}");
        assert!(text.contains("\"value\": 4"), "{text}");

        // A later run's metadata replaces the stored line, like records.
        let mut c2 = Criterion {
            test_mode: false,
            ..Criterion::default()
        };
        c2.record_metadata("host_cores", 2.0);
        c2.write_json(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.matches("\"host_cores\"").count(), 1, "{text}");
        assert!(text.contains("\"value\": 2"), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn group_overrides_stay_group_scoped() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_secs(1))
            .warm_up_time(Duration::from_millis(1));
        c.test_mode = false;
        let mut g = c.benchmark_group("a");
        g.sample_size(2);
        g.bench_function("x", |b| b.iter(|| black_box(1)));
        g.finish();
        let mut g = c.benchmark_group("b");
        g.bench_function("y", |b| b.iter(|| black_box(1)));
        g.finish();
        assert_eq!(c.records[0].samples, 2, "group override applies");
        assert_eq!(c.records[1].samples, 4, "later group gets the default back");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            sample_size: 2,
            measurement_time: Duration::from_millis(50),
            warm_up_time: Duration::from_millis(1),
            test_mode: false,
            samples_ns: Vec::new(),
        };
        b.iter_batched(
            || vec![1u64; 10],
            |v| v.iter().sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert!(!b.samples_ns.is_empty());
    }
}
