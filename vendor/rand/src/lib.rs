//! Offline vendored mini-`rand`: a deterministic, dependency-free
//! re-implementation of the subset of the `rand 0.8` API this workspace
//! uses. The container has no network access to crates.io, so the real
//! crate cannot be fetched; this stand-in keeps the exact module paths
//! and trait signatures (`Rng`, `RngCore`, `SeedableRng`,
//! `rngs::StdRng`, `seq::SliceRandom`, `distributions::{Distribution,
//! Standard, Uniform}`) so sources compile unmodified against either.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 generator of upstream `rand`, so seed-for-seed streams
//! differ from upstream, but all determinism guarantees (same seed ⇒
//! same stream) hold identically.

#![forbid(unsafe_code)]

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations. The vendored generators are
/// infallible; this exists to satisfy the `try_fill_bytes` signature.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: uniformly random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an error.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 —
    /// every distinct `state` yields an unrelated stream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }

    /// Builds the generator from another RNG's output.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.try_fill_bytes(seed.as_mut())?;
        Ok(Self::from_seed(seed))
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution (uniform over the type's full value range; `[0,1)`
    /// for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills a byte slice with random data (alias of `fill_bytes`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts a random `u64` into a uniform `f64` in `[0, 1)` with 53
/// bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from, producing `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, len)` by rejection sampling, bias-free.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, len: u64) -> u64 {
    debug_assert!(len > 0);
    if len.is_power_of_two() {
        return rng.next_u64() & (len - 1);
    }
    // Widening-multiply rejection (Lemire): unbiased, at most one
    // extra draw in expectation.
    let zone = u64::MAX - (u64::MAX % len) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return ((v as u128 * len as u128) >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let len = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, len) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let len = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if len == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, len) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let len = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, len) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let len = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                if len == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, len) as $t)
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        // Rounding in `start + len * unit` can land exactly on `end`
        // (certainly for f32, and for f64 at extreme magnitudes);
        // resample to keep the half-open contract. Rejection probability
        // is ~2^-53, so this virtually never loops.
        loop {
            let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        // `unit_f64(..) as f32` rounds up to 1.0 with probability ~3e-8;
        // resample so the result stays strictly below `end`.
        loop {
            let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32;
            if v < self.end {
                return v;
            }
        }
    }
}

pub mod distributions {
    //! The standard distribution and the [`Distribution`] trait.

    use super::{uniform_below, unit_f64, RngCore, SampleRange};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: uniform over the full value
    /// range for integers and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng.next_u64()) as f32
        }
    }

    /// Uniform distribution over a half-open integer range, resampled
    /// on every draw.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<u64> {
        /// Uniform over `[low, high)`.
        pub fn new(low: u64, high: u64) -> Self {
            assert!(low < high, "Uniform::new on empty range");
            Self { low, high }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: u64, high: u64) -> Self {
            assert!(low <= high, "Uniform::new_inclusive on empty range");
            Self {
                low,
                high: high.checked_add(1).expect("inclusive range overflow"),
            }
        }
    }

    impl Distribution<u64> for Uniform<u64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            self.low + uniform_below(rng, self.high - self.low)
        }
    }

    impl Uniform<f64> {
        /// Uniform over `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new on empty range");
            Self { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (self.low..self.high).sample_from(rng)
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 of upstream `rand` — streams differ seed-for-seed
    /// from upstream, but determinism (same seed ⇒ same stream) and
    /// statistical quality suitable for these experiments hold.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    impl StdRng {
        /// Captures the generator's raw xoshiro256++ state, for
        /// checkpointing; feed it back to [`StdRng::from_state`] to
        /// resume the stream exactly where it left off.
        pub fn to_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::to_state`]. An all-zero state (a xoshiro fixed
        /// point, unreachable from any seeded generator) is nudged to
        /// the same non-zero constants `from_seed` uses.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::from_seed([0u8; 32]);
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    /// Alias of [`StdRng`]; upstream's `SmallRng` is also a xoshiro.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Commonly used traits and types, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0..10u64);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&x));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 hit {hits}/10000");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rng_usable_through_mut_ref() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let _ = draw(&mut rng);
        let mut r: &mut StdRng = &mut rng;
        let _ = draw(&mut r);
    }
}
