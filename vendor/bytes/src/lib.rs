//! Offline vendored mini-`bytes`: the [`Bytes`] type as used by this
//! workspace — an immutable, cheaply cloneable byte buffer that derefs
//! to `[u8]`. Backed by `Arc<[u8]>`; no zero-copy slicing machinery.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a static slice into a buffer.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: v.into() }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(b.len(), 8);
        assert!(!b.is_empty());
        assert_eq!(b.chunks_exact(4).count(), 2);
        assert_eq!(Bytes::new().len(), 0);
        let c = b.clone();
        assert_eq!(&*c, &*b);
    }
}
