//! Offline vendored mini-`proptest`: deterministic random-case testing
//! with the `proptest!` macro shape this workspace uses.
//!
//! Differences from upstream: cases are drawn from a fixed per-test
//! seed (derived from the test name) so runs are exactly reproducible,
//! and there is **no shrinking** — a failing case reports its number
//! and message but is not minimized. Strategies cover ranges, tuples
//! of strategies, and [`collection::vec`].

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and range/tuple instances.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// A strategy producing a constant.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty() || size.start == 0, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration and failure reporting.

    use std::fmt;

    /// Per-block configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed property, carried from `prop_assert!` to the harness.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail<M: Into<String>>(message: M) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

#[doc(hidden)]
pub mod macro_support {
    //! Internals used by the expansion of [`proptest!`](crate::proptest).

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test generator: FNV-1a over the test name,
    /// overridable globally via `PROPTEST_SEED`.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s;
            }
        }
        StdRng::seed_from_u64(h)
    }
}

/// Declares property tests: each `fn name(binding in strategy, ...)`
/// expands to a `#[test]` that samples `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; `$config` is captured once
/// so it can be repeated per generated test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $config;
                let mut proptest_rng = $crate::macro_support::rng_for(stringify!($name));
                for proptest_case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);
                    )+
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest {}: case {} of {} failed: {e}\n\
                             (vendored mini-proptest: no shrinking; \
                             rerun is deterministic per test name)",
                            stringify!($name),
                            proptest_case + 1,
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_of_tuples(pairs in vec((0u32..10, 0u64..100), 0..20)) {
            prop_assert!(pairs.len() < 20);
            for &(a, b) in &pairs {
                prop_assert!(a < 10 && b < 100);
            }
        }

        #[test]
        fn eq_and_trailing_comma(
            v in vec(0u64..4, 1..10),
        ) {
            let doubled: Vec<u64> = v.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        let s = vec(0u64..1000, 1..50);
        let a = s.sample(&mut crate::macro_support::rng_for("fixed"));
        let b = s.sample(&mut crate::macro_support::rng_for("fixed"));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            fn always_fails(x in 0u64..10) { prop_assert!(x > 100); }
        }
        always_fails();
    }
}
