//! Offline vendored mini-`serde`: the trait surface this workspace
//! compiles against, reimplemented without network access to crates.io.
//!
//! The data model is deliberately smaller than upstream serde's
//! 29-method visitor architecture: a [`Serializer`] is a writer of
//! primitive values and sequence markers, a [`Deserializer`] is the
//! matching reader. Call sites that only *bound* on the traits and
//! recurse through `Serialize::serialize` / `Deserialize::deserialize`
//! (which is all this workspace does) compile unmodified.
//!
//! `#[derive(Serialize, Deserialize)]` is re-exported from the
//! companion `serde_derive` proc-macro crate. The derived impls are
//! compile-time stubs: they satisfy trait bounds and accept `#[serde]`
//! field attributes but return an error if invoked at runtime (nothing
//! in the workspace serializes derived types yet — the in-repo
//! [`bincode`]-style codec below is exercised only through the manual
//! impls).

#![forbid(unsafe_code)]

use core::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// A value that can be written into a [`Serializer`].
pub trait Serialize {
    /// Writes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value that can be read back out of a [`Deserializer`].
///
/// The `'de` lifetime mirrors upstream serde; the mini data model has
/// no zero-copy types, so it is unconstrained here.
pub trait Deserialize<'de>: Sized {
    /// Reads a value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A writer for the mini serde data model.
pub trait Serializer: Sized {
    /// Value returned on success by the outermost `serialize` call.
    type Ok;
    /// Error type for this serializer.
    type Error: ser::Error;

    /// Writes a `bool`.
    fn write_bool(&mut self, v: bool) -> Result<(), Self::Error>;
    /// Writes a `u64` (all unsigned integers widen to this).
    fn write_u64(&mut self, v: u64) -> Result<(), Self::Error>;
    /// Writes an `i64` (all signed integers widen to this).
    fn write_i64(&mut self, v: i64) -> Result<(), Self::Error>;
    /// Writes an `f64`.
    fn write_f64(&mut self, v: f64) -> Result<(), Self::Error>;
    /// Writes a string.
    fn write_str(&mut self, v: &str) -> Result<(), Self::Error>;
    /// Marks the start of a sequence of `len` elements.
    fn write_seq_len(&mut self, len: usize) -> Result<(), Self::Error>;

    /// Writes a length-prefixed opaque byte string in one call.
    ///
    /// This is the bulk channel for pre-encoded payloads (packed
    /// counter arrays, varint blocks): the default widens each byte to
    /// a `u64`, which round-trips against the default
    /// [`Deserializer::read_byte_seq`] on any codec, while byte-oriented
    /// codecs override **both** sides with a length-prefixed `memcpy`.
    /// Overrides must come in write/read pairs — the two defaults agree
    /// with each other, and the two overrides agree with each other,
    /// but the formats are not interchangeable.
    fn write_byte_seq(&mut self, v: &[u8]) -> Result<(), Self::Error> {
        self.write_seq_len(v.len())?;
        for &b in v {
            self.write_u64(u64::from(b))?;
        }
        Ok(())
    }

    /// Reserves room for roughly `additional` more encoded bytes, when
    /// the codec buffers in memory. A size *hint* for
    /// preallocate-and-write-once encoders; the default does nothing.
    fn reserve(&mut self, additional: usize) {
        let _ = additional;
    }

    /// Finishes serialization and produces the `Ok` value.
    fn done(self) -> Result<Self::Ok, Self::Error>;
}

/// Writing through a mutable reference leaves completion to the owner:
/// `Ok` is `()` and [`Serializer::done`] is a no-op. This is what lets
/// container impls recurse (`element.serialize(&mut *self_serializer)`).
impl<S: Serializer> Serializer for &mut S {
    type Ok = ();
    type Error = S::Error;

    fn write_bool(&mut self, v: bool) -> Result<(), Self::Error> {
        (**self).write_bool(v)
    }
    fn write_u64(&mut self, v: u64) -> Result<(), Self::Error> {
        (**self).write_u64(v)
    }
    fn write_i64(&mut self, v: i64) -> Result<(), Self::Error> {
        (**self).write_i64(v)
    }
    fn write_f64(&mut self, v: f64) -> Result<(), Self::Error> {
        (**self).write_f64(v)
    }
    fn write_str(&mut self, v: &str) -> Result<(), Self::Error> {
        (**self).write_str(v)
    }
    fn write_seq_len(&mut self, len: usize) -> Result<(), Self::Error> {
        (**self).write_seq_len(len)
    }
    // The bulk channel must forward explicitly: falling back to the
    // trait default here would silently re-encode byte strings
    // element-wise even when the underlying codec has a fast pair.
    fn write_byte_seq(&mut self, v: &[u8]) -> Result<(), Self::Error> {
        (**self).write_byte_seq(v)
    }
    fn reserve(&mut self, additional: usize) {
        (**self).reserve(additional);
    }
    fn done(self) -> Result<(), Self::Error> {
        Ok(())
    }
}

/// A reader for the mini serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error type for this deserializer.
    type Error: de::Error;

    /// Reads a `bool`.
    fn read_bool(&mut self) -> Result<bool, Self::Error>;
    /// Reads a `u64`.
    fn read_u64(&mut self) -> Result<u64, Self::Error>;
    /// Reads an `i64`.
    fn read_i64(&mut self) -> Result<i64, Self::Error>;
    /// Reads an `f64`.
    fn read_f64(&mut self) -> Result<f64, Self::Error>;
    /// Reads a string.
    fn read_string(&mut self) -> Result<String, Self::Error>;
    /// Reads a sequence-length marker.
    fn read_seq_len(&mut self) -> Result<usize, Self::Error>;

    /// Reads a string written by [`Serializer::write_str`] and reports
    /// whether it equals `expected` — the hot path of a format-tag
    /// check. The default round-trips through [`Deserializer::read_string`];
    /// byte-oriented codecs override it to compare in place, so the
    /// (overwhelmingly common) matching case allocates nothing.
    fn check_str(&mut self, expected: &str) -> Result<bool, Self::Error> {
        Ok(self.read_string()? == expected)
    }

    /// Reads a byte string written by [`Serializer::write_byte_seq`].
    /// Default and override pairing rules are documented there.
    fn read_byte_seq(&mut self) -> Result<Vec<u8>, Self::Error> {
        let len = self.read_seq_len()?;
        let mut out = Vec::new();
        for _ in 0..len {
            let w = self.read_u64()?;
            let b = u8::try_from(w).map_err(|_| de::Error::custom("byte out of range"))?;
            out.push(b);
        }
        Ok(out)
    }
}

impl<'de, D: Deserializer<'de>> Deserializer<'de> for &mut D {
    type Error = D::Error;

    fn read_bool(&mut self) -> Result<bool, Self::Error> {
        (**self).read_bool()
    }
    fn read_u64(&mut self) -> Result<u64, Self::Error> {
        (**self).read_u64()
    }
    fn read_i64(&mut self) -> Result<i64, Self::Error> {
        (**self).read_i64()
    }
    fn read_f64(&mut self) -> Result<f64, Self::Error> {
        (**self).read_f64()
    }
    fn read_string(&mut self) -> Result<String, Self::Error> {
        (**self).read_string()
    }
    fn read_seq_len(&mut self) -> Result<usize, Self::Error> {
        (**self).read_seq_len()
    }
    fn read_byte_seq(&mut self) -> Result<Vec<u8>, Self::Error> {
        (**self).read_byte_seq()
    }
    fn check_str(&mut self, expected: &str) -> Result<bool, Self::Error> {
        (**self).check_str(expected)
    }
}

pub mod ser {
    //! Serialization-side error trait, mirroring `serde::ser`.

    use core::fmt::Display;

    /// Errors a [`crate::Serializer`] can produce.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

pub mod de {
    //! Deserialization-side error trait, mirroring `serde::de`.

    use core::fmt::Display;

    /// Errors a [`crate::Deserializer`] can produce.
    ///
    /// Besides the catch-all [`Error::custom`], decoders can classify
    /// failures through the provided constructors so callers that care
    /// (snapshot restore reporting `Truncated` vs `LengthOverflow` vs
    /// `InvariantViolated`) can recover the class; error types that do
    /// not track classes inherit the defaults, which fold everything
    /// into `custom`.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;

        /// The input ended before the value did.
        fn truncated() -> Self {
            Self::custom("unexpected end of input")
        }

        /// A length prefix or element count exceeds what the remaining
        /// input could possibly hold — adversarial or corrupt, and
        /// rejected *before* any allocation sized from it.
        fn length_overflow<T: Display>(msg: T) -> Self {
            Self::custom(msg)
        }

        /// The bytes decoded, but the decoded value violates a
        /// structural invariant of the target type.
        fn invariant<T: Display>(msg: T) -> Self {
            Self::custom(msg)
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
                serializer.write_u64(*self as u64)?;
                serializer.done()
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.read_u64()?;
                <$t>::try_from(v).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
                serializer.write_i64(*self as i64)?;
                serializer.done()
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.read_i64()?;
                <$t>::try_from(v).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_bool(*self)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        deserializer.read_bool()
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_f64(*self)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        deserializer.read_f64()
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_f64(f64::from(*self))?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        Ok(deserializer.read_f64()? as f32)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_str(self)?;
        serializer.done()
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_str(self)?;
        serializer.done()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        deserializer.read_string()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_seq_len(self.len())?;
        for item in self {
            item.serialize(&mut serializer)?;
        }
        serializer.done()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let len = deserializer.read_seq_len()?;
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::deserialize(&mut deserializer)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_seq_len(self.len())?;
        for item in self {
            item.serialize(&mut serializer)?;
        }
        serializer.done()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.write_seq_len(0)?,
            Some(v) => {
                serializer.write_seq_len(1)?;
                v.serialize(&mut serializer)?;
            }
        }
        serializer.done()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        match deserializer.read_seq_len()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(&mut deserializer)?)),
            _ => Err(de::Error::custom("invalid Option tag")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, mut serializer: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(&mut serializer)?;
        self.1.serialize(&mut serializer)?;
        serializer.done()
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let a = A::deserialize(&mut deserializer)?;
        let b = B::deserialize(&mut deserializer)?;
        Ok((a, b))
    }
}

/// A ready-made binary codec over the mini data model, so round-trip
/// tests have something concrete to drive (little-endian fixed-width
/// primitives, `u64` length prefixes).
pub mod bincode {
    use super::{de, ser, Deserialize, Deserializer, Serialize, Serializer};
    use core::fmt;

    /// Failure class of a codec [`Error`], so callers can distinguish
    /// "the buffer ended early" from "a length prefix is lying" from
    /// "the decoded value is structurally impossible" without parsing
    /// message strings.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ErrorKind {
        /// The input ended before the value did.
        Truncated,
        /// A length prefix or element count exceeds the remaining
        /// input; rejected before any allocation sized from it.
        LengthOverflow,
        /// The bytes decoded but violate a structural invariant of the
        /// target type.
        Invariant,
        /// Any other malformed input (bad UTF-8, out-of-range field,
        /// serialization-side failure).
        Invalid,
    }

    /// Codec error: a failure class plus a human-readable message.
    #[derive(Debug)]
    pub struct Error {
        kind: ErrorKind,
        msg: String,
    }

    impl Error {
        fn new(kind: ErrorKind, msg: impl Into<String>) -> Self {
            Self {
                kind,
                msg: msg.into(),
            }
        }

        /// The failure class.
        pub fn kind(&self) -> ErrorKind {
            self.kind
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "bincode: {}", self.msg)
        }
    }

    impl std::error::Error for Error {}

    impl ser::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Self::new(ErrorKind::Invalid, msg.to_string())
        }
    }

    impl de::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Self::new(ErrorKind::Invalid, msg.to_string())
        }
        fn truncated() -> Self {
            Self::new(ErrorKind::Truncated, "unexpected end of input")
        }
        fn length_overflow<T: fmt::Display>(msg: T) -> Self {
            Self::new(ErrorKind::LengthOverflow, msg.to_string())
        }
        fn invariant<T: fmt::Display>(msg: T) -> Self {
            Self::new(ErrorKind::Invariant, msg.to_string())
        }
    }

    /// Byte-buffer serializer.
    #[derive(Default)]
    pub struct Writer {
        buf: Vec<u8>,
    }

    impl Writer {
        /// A writer whose buffer is preallocated for roughly
        /// `capacity` encoded bytes, so a size-hinted snapshot is
        /// written once into one allocation instead of growing through
        /// reallocation-and-copy cycles.
        pub fn with_capacity(capacity: usize) -> Self {
            Self {
                buf: Vec::with_capacity(capacity),
            }
        }
    }

    impl Serializer for Writer {
        type Ok = Vec<u8>;
        type Error = Error;

        fn write_bool(&mut self, v: bool) -> Result<(), Error> {
            self.buf.push(u8::from(v));
            Ok(())
        }
        fn write_u64(&mut self, v: u64) -> Result<(), Error> {
            self.buf.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
        fn write_i64(&mut self, v: i64) -> Result<(), Error> {
            self.buf.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
        fn write_f64(&mut self, v: f64) -> Result<(), Error> {
            self.buf.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
        fn write_str(&mut self, v: &str) -> Result<(), Error> {
            self.write_u64(v.len() as u64)?;
            self.buf.extend_from_slice(v.as_bytes());
            Ok(())
        }
        fn write_seq_len(&mut self, len: usize) -> Result<(), Error> {
            self.write_u64(len as u64)
        }
        fn write_byte_seq(&mut self, v: &[u8]) -> Result<(), Error> {
            // Bulk pair with `Reader::read_byte_seq`: u64 length prefix,
            // then the raw bytes in one `memcpy`.
            self.write_u64(v.len() as u64)?;
            self.buf.extend_from_slice(v);
            Ok(())
        }
        fn reserve(&mut self, additional: usize) {
            self.buf.reserve(additional);
        }
        fn done(self) -> Result<Vec<u8>, Error> {
            Ok(self.buf)
        }
    }

    /// Byte-buffer deserializer.
    pub struct Reader<'a> {
        buf: &'a [u8],
    }

    impl<'a> Reader<'a> {
        /// Reader over a byte buffer.
        pub fn new(buf: &'a [u8]) -> Self {
            Self { buf }
        }

        /// Bytes not yet consumed. Strict decoders use this to reject
        /// buffers with trailing garbage after a complete payload.
        pub fn remaining(&self) -> usize {
            self.buf.len()
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
            if self.buf.len() < n {
                return Err(de::Error::truncated());
            }
            let (head, tail) = self.buf.split_at(n);
            self.buf = tail;
            Ok(head)
        }

        /// Reads a u64 length prefix and validates it against the
        /// remaining input **before** the usize cast, so an untrusted
        /// prefix can never drive an allocation (or a 32-bit
        /// truncation) larger than the buffer that carried it.
        fn bounded_len(&mut self, what: &str) -> Result<usize, Error> {
            let len = self.read_u64()?;
            if len > self.buf.len() as u64 {
                return Err(de::Error::length_overflow(format!(
                    "{what} length {len} exceeds {} remaining bytes",
                    self.buf.len()
                )));
            }
            Ok(len as usize)
        }

        fn word(&mut self) -> Result<[u8; 8], Error> {
            let bytes = self.take(8)?;
            let mut w = [0u8; 8];
            w.copy_from_slice(bytes);
            Ok(w)
        }
    }

    impl<'de> Deserializer<'de> for Reader<'_> {
        type Error = Error;

        fn read_bool(&mut self) -> Result<bool, Error> {
            Ok(self.take(1)?[0] != 0)
        }
        fn read_u64(&mut self) -> Result<u64, Error> {
            Ok(u64::from_le_bytes(self.word()?))
        }
        fn read_i64(&mut self) -> Result<i64, Error> {
            Ok(i64::from_le_bytes(self.word()?))
        }
        fn read_f64(&mut self) -> Result<f64, Error> {
            Ok(f64::from_le_bytes(self.word()?))
        }
        fn read_string(&mut self) -> Result<String, Error> {
            let len = self.bounded_len("string")?;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec())
                .map_err(|_| Error::new(ErrorKind::Invalid, "invalid utf-8"))
        }
        fn read_seq_len(&mut self) -> Result<usize, Error> {
            // Every encoded element occupies at least one byte, so a
            // valid count can never exceed the remaining input; bounding
            // here makes `Vec::with_capacity(read_seq_len()?)` safe at
            // every call site regardless of what the prefix claims.
            self.bounded_len("sequence")
        }
        fn read_byte_seq(&mut self) -> Result<Vec<u8>, Error> {
            let len = self.bounded_len("byte string")?;
            Ok(self.take(len)?.to_vec())
        }
        fn check_str(&mut self, expected: &str) -> Result<bool, Error> {
            let len = self.bounded_len("tag string")?;
            Ok(self.take(len)? == expected.as_bytes())
        }
    }

    /// Serializes `value` to bytes.
    pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
        value.serialize(Writer::default())
    }

    /// Deserializes a value from `bytes`.
    pub fn from_bytes<'de, T: Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
        T::deserialize(Reader { buf: bytes })
    }
}

/// Builds a deserialization error from a message; free-function form of
/// [`de::Error::custom`] used by `?`-style call sites.
pub fn custom_de_error<E: de::Error, M: Display>(msg: M) -> E {
    E::custom(msg)
}

#[cfg(test)]
mod tests {
    use super::bincode;

    #[test]
    fn primitive_and_vec_round_trip() {
        let v: Vec<u64> = vec![0, 1, 2, u64::MAX];
        let bytes = bincode::to_bytes(&v).unwrap();
        assert_eq!(bytes.len(), 8 + 4 * 8);
        let back: Vec<u64> = bincode::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nested_tuple_round_trip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (9, -3.25)];
        let bytes = bincode::to_bytes(&v).unwrap();
        let back: Vec<(u32, f64)> = bincode::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = bincode::to_bytes(&vec![7u64; 3]).unwrap();
        let r: Result<Vec<u64>, _> = bincode::from_bytes(&bytes[..bytes.len() - 1]);
        assert!(r.is_err());
    }

    #[test]
    fn byte_seq_round_trip_via_bulk_pair() {
        use super::{Deserializer as _, Serializer as _};
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut w = bincode::Writer::with_capacity(payload.len() + 8);
        w.write_byte_seq(&payload).unwrap();
        w.write_u64(0xDEAD).unwrap();
        let buf = w.done().unwrap();
        // Length prefix + raw bytes + trailing word.
        assert_eq!(buf.len(), 8 + payload.len() + 8);
        let mut r = bincode::Reader::new(&buf);
        assert_eq!(r.read_byte_seq().unwrap(), payload);
        assert_eq!(r.read_u64().unwrap(), 0xDEAD);
        // Truncated payloads are rejected, not zero-filled.
        let mut r = bincode::Reader::new(&buf[..payload.len() / 2]);
        assert!(r.read_byte_seq().is_err());
    }

    #[test]
    fn inflated_length_prefixes_are_rejected_before_allocation() {
        use super::Deserializer as _;
        // A buffer whose only content is a u64 length prefix claiming
        // u64::MAX elements/bytes: every length-prefixed read must
        // reject it as LengthOverflow without allocating.
        let huge = u64::MAX.to_le_bytes();
        let r: Result<Vec<u64>, _> = bincode::from_bytes(&huge);
        assert_eq!(r.unwrap_err().kind(), bincode::ErrorKind::LengthOverflow);
        let mut rd = bincode::Reader::new(&huge);
        assert_eq!(
            rd.read_byte_seq().unwrap_err().kind(),
            bincode::ErrorKind::LengthOverflow
        );
        let mut rd = bincode::Reader::new(&huge);
        assert_eq!(
            rd.read_string().unwrap_err().kind(),
            bincode::ErrorKind::LengthOverflow
        );
        let mut rd = bincode::Reader::new(&huge);
        assert_eq!(
            rd.check_str("hh.test.v1").unwrap_err().kind(),
            bincode::ErrorKind::LengthOverflow
        );
        // A plausible-but-too-large count is also rejected: 100 claimed
        // elements with 3 trailing bytes cannot be valid.
        let mut buf = 100u64.to_le_bytes().to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        let r: Result<Vec<u64>, _> = bincode::from_bytes(&buf);
        assert_eq!(r.unwrap_err().kind(), bincode::ErrorKind::LengthOverflow);
    }

    #[test]
    fn error_kinds_classify_failures() {
        use super::de::Error as _;
        let bytes = bincode::to_bytes(&vec![7u64; 3]).unwrap();
        let r: Result<Vec<u64>, _> = bincode::from_bytes(&bytes[..bytes.len() - 1]);
        assert_eq!(r.unwrap_err().kind(), bincode::ErrorKind::Truncated);
        assert_eq!(
            bincode::Error::invariant("x").kind(),
            bincode::ErrorKind::Invariant
        );
        assert_eq!(
            bincode::Error::custom("x").kind(),
            bincode::ErrorKind::Invalid
        );
    }

    #[test]
    fn string_and_option_round_trip() {
        let s = String::from("heavy hitters");
        let back: String = bincode::from_bytes(&bincode::to_bytes(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        let some: Option<u64> = Some(42);
        let back: Option<u64> = bincode::from_bytes(&bincode::to_bytes(&some).unwrap()).unwrap();
        assert_eq!(back, Some(42));
    }
}
