//! Offline vendored `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! without `syn`/`quote` (neither is available offline).
//!
//! The emitted impls are *compile-time stubs*: they satisfy `Serialize`
//! / `Deserialize` trait bounds (and accept `#[serde(...)]` helper
//! attributes) but error at runtime if actually invoked. That is the
//! contract this workspace needs today — derives exist so summaries are
//! declared serializable at the type level; every serialization that
//! actually runs goes through hand-written impls. Upgrading these to
//! field-wise impls is purely local to this crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Name and generics of the deriving type.
struct Target {
    name: String,
    /// Verbatim generic parameter list (without angle brackets), e.g.
    /// `'a, T: Clone`.
    params: String,
    /// Parameter names only, for the `for Name<...>` position, e.g.
    /// `'a, T`.
    args: String,
}

/// Extracts the type name and generics from the derive input. Panics
/// (a compile error in derive position) on shapes the mini-parser does
/// not understand; the error text says to extend it.
fn parse_target(input: TokenStream) -> Target {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`# [ ... ]`) and visibility (`pub`, `pub(...)`).
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let bracket = iter.next();
                assert!(
                    matches!(
                        bracket,
                        Some(TokenTree::Group(ref g)) if g.delimiter() == Delimiter::Bracket
                    ),
                    "serde_derive stub: malformed attribute"
                );
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if matches!(id.to_string().as_str(), "struct" | "enum") => {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => break name.to_string(),
                    other => panic!("serde_derive stub: expected type name, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(_)) => {
                // Other modifiers (e.g. `union` is unsupported and will
                // fall through to the end-of-input panic below).
            }
            Some(tt) => panic!("serde_derive stub: unexpected token {tt}"),
            None => panic!("serde_derive stub: no struct/enum found"),
        }
    };

    let mut params = String::new();
    let mut args = String::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut raw: Vec<TokenTree> = Vec::new();
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            raw.push(tt);
        }
        assert!(depth == 0, "serde_derive stub: unbalanced generics");
        params = raw
            .iter()
            .map(|tt| tt.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        // Parameter names: per top-level comma segment, the tokens
        // before the first `:` (handles `T`, `'a`, and `T: Bound`;
        // const generics are not needed by this workspace).
        let mut segments: Vec<String> = Vec::new();
        let mut current = String::new();
        let mut bound = false;
        let mut seg_depth = 0usize;
        for tt in &raw {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => seg_depth += 1,
                    '>' => seg_depth -= 1,
                    ',' if seg_depth == 0 => {
                        segments.push(current.trim().to_string());
                        current.clear();
                        bound = false;
                        continue;
                    }
                    ':' if seg_depth == 0 => {
                        bound = true;
                        continue;
                    }
                    _ => {}
                }
            }
            if !bound && seg_depth == 0 {
                current.push_str(&tt.to_string());
            }
        }
        if !current.trim().is_empty() {
            segments.push(current.trim().to_string());
        }
        args = segments.join(", ");
    }

    Target { name, params, args }
}

fn type_path(target: &Target) -> String {
    if target.args.is_empty() {
        target.name.clone()
    } else {
        format!("{}<{}>", target.name, target.args)
    }
}

/// Derives a stub `serde::Serialize` impl (see crate docs).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    let generics = if target.params.is_empty() {
        String::new()
    } else {
        format!("<{}>", target.params)
    };
    format!(
        "impl{generics} ::serde::Serialize for {path} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, _serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 ::core::result::Result::Err(<__S::Error as ::serde::ser::Error>::custom(\n\
                     \"vendored serde stub: derived Serialize for `{name}` is compile-time only\"))\n\
             }}\n\
         }}",
        path = type_path(&target),
        name = target.name,
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}

/// Derives a stub `serde::Deserialize` impl (see crate docs).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    let generics = if target.params.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {}>", target.params)
    };
    format!(
        "impl{generics} ::serde::Deserialize<'de> for {path} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(_deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                     \"vendored serde stub: derived Deserialize for `{name}` is compile-time only\"))\n\
             }}\n\
         }}",
        path = type_path(&target),
        name = target.name,
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}
