//! Property suite for the key-sharded pipeline: the union-of-shards
//! report must satisfy the (φ, ε) recall and suppression guarantees of
//! Definition 1 on planted-heavy-hitter and Zipf streams at 1, 2, and 4
//! shards — the shard count is an executor knob, not a semantics knob.

use hh_core::{HhParams, StreamSummary};
use hh_pipeline::{sharded_algo1, sharded_algo2, ShardedPipeline};
use hh_streams::{arrange, collect_stream, ExactCounts, OrderPolicy, ZipfGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Planted workload: a 30% item, an item just over φ, an item pinned
/// just under (φ−ε), and a light-id tail.
fn planted_with_boundary(m: u64, phi: f64, eps: f64, seed: u64) -> Vec<u64> {
    let light_frac = phi - eps - 0.02;
    let mut counts: Vec<(u64, u64)> = vec![
        (1, (0.30 * m as f64) as u64),
        (2, (phi * m as f64) as u64 + m / 200),
        (3, (light_frac * m as f64) as u64),
    ];
    let used: u64 = counts.iter().map(|&(_, c)| c).sum();
    let tail_ids = 2048u64;
    let fill = m - used;
    for j in 0..tail_ids {
        let c = fill / tail_ids + u64::from(j < fill % tail_ids);
        if c > 0 {
            counts.push((1_000_000 + j, c));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    arrange(&counts, OrderPolicy::Shuffled, &mut rng)
}

fn ingest_chunked<S: StreamSummary + Send + 'static>(
    pipe: &mut ShardedPipeline<S>,
    stream: &[u64],
    chunk: usize,
) {
    for part in stream.chunks(chunk.max(1)) {
        pipe.ingest(part);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn planted_guarantees_hold_at_every_shard_count(
        seed in 0u64..1 << 32,
        chunk in 1024usize..65_536,
    ) {
        let (m, phi, eps) = (400_000u64, 0.15, 0.05);
        let stream = planted_with_boundary(m, phi, eps, seed);
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        for shards in SHARD_COUNTS {
            let mut pipe =
                sharded_algo2(params, 1 << 40, m, shards, seed ^ 0xD1CE).unwrap();
            ingest_chunked(&mut pipe, &stream, chunk);
            let r = pipe.report();
            prop_assert!(r.contains(1), "{shards} shards: missing 30% item");
            prop_assert!(r.contains(2), "{shards} shards: missing phi-heavy item");
            prop_assert!(
                !r.contains(3),
                "{shards} shards: (phi-eps)-light item reported"
            );
            let est = r.estimate(1).unwrap();
            prop_assert!(
                (est - 0.30 * m as f64).abs() <= eps * m as f64,
                "{shards} shards: estimate {est} off by more than eps*m"
            );
        }
    }

    #[test]
    fn zipf_recall_and_suppression_at_every_shard_count(seed in 0u64..1 << 32) {
        let (m, phi, eps) = (300_000usize, 0.1, 0.04);
        let mut gen = ZipfGenerator::new(1 << 30, 1.3);
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = collect_stream(&mut gen, m, &mut rng);
        let oracle = ExactCounts::from_stream(&stream);
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        for shards in SHARD_COUNTS {
            let mut pipe =
                sharded_algo2(params, 1 << 30, m as u64, shards, seed ^ 0xBEEF).unwrap();
            ingest_chunked(&mut pipe, &stream, 16 * 1024);
            let r = pipe.report();
            for (item, f) in oracle.heavy_hitters(phi) {
                prop_assert!(
                    r.contains(item),
                    "{shards} shards: missing zipf HH {item} (f = {f})"
                );
            }
            for item in oracle.forbidden(phi, eps) {
                prop_assert!(
                    !r.contains(item),
                    "{shards} shards: forbidden zipf item {item} reported"
                );
            }
        }
    }

    #[test]
    fn algo1_pipeline_guarantees_hold(seed in 0u64..1 << 32) {
        let (m, phi, eps) = (300_000u64, 0.15, 0.05);
        let stream = planted_with_boundary(m, phi, eps, seed);
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        for shards in SHARD_COUNTS {
            let mut pipe =
                sharded_algo1(params, 1 << 40, m, shards, seed ^ 0xFA11).unwrap();
            ingest_chunked(&mut pipe, &stream, 32 * 1024);
            let r = pipe.report();
            prop_assert!(r.contains(1), "{shards} shards: missing 30% item");
            prop_assert!(r.contains(2), "{shards} shards: missing phi-heavy item");
            prop_assert!(
                !r.contains(3),
                "{shards} shards: (phi-eps)-light item reported"
            );
        }
    }

    #[test]
    fn same_seed_pipeline_runs_are_bit_identical(seed in 0u64..1 << 32) {
        let (m, phi, eps) = (150_000u64, 0.2, 0.05);
        let stream = planted_with_boundary(m, phi, eps, seed);
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        let run = || {
            let mut pipe = sharded_algo2(params, 1 << 40, m, 4, seed).unwrap();
            ingest_chunked(&mut pipe, &stream, 8192);
            pipe
        };
        let (a, b) = (run(), run());
        // Thread scheduling must not leak into results: shards are
        // independent, so the union report is schedule-free.
        let (ra, rb) = (a.report(), b.report());
        prop_assert_eq!(ra.entries(), rb.entries());
        prop_assert_eq!(a.total(), b.total());
    }
}
