//! Property suite for batched ingestion: `insert_batch` must be
//! observationally equivalent to element-wise `insert` for every summary
//! in the workspace, across random streams and random batch sizes.
//!
//! "Observationally equivalent" is checked at the strongest level each
//! summary supports: identical reports, identical point estimates on
//! heavy/light/absent probes, and — because every batch override either
//! is deterministic or preserves the backing-RNG draw order — this holds
//! under a *shared seed*, i.e. batch and scalar runs are interchangeable
//! bit-for-bit, not merely statistically.

use hh_baselines::{
    CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving, StickySampling,
};
use hh_core::StreamSummary;
use hh_core::{FrequencyEstimator, HeavyHitters, HhParams, OptimalListHh, SimpleListHh};
use hh_streams::{collect_stream, ZipfGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 60_000;
const N: u64 = 1 << 32;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;

/// A Zipf stream plus probe ids: the two top (scrambled) ranks, a tail
/// id, and an absent id.
fn workload(seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = ZipfGenerator::new(N, 1.2).scrambled(&mut rng);
    let stream = collect_stream(&mut gen, M, &mut rng);
    let probes = vec![
        gen.id_of_rank(1),
        gen.id_of_rank(2),
        gen.id_of_rank(1000),
        stream.iter().max().unwrap() + 1,
    ];
    (stream, probes)
}

/// Drives `scalar` element-wise and `batch` through chunked
/// `insert_batch`, then asserts observational equivalence.
fn assert_equiv<S>(mut scalar: S, mut batch: S, stream: &[u64], chunk: usize, probes: &[u64])
where
    S: StreamSummary + HeavyHitters + FrequencyEstimator,
{
    for &x in stream {
        scalar.insert(x);
    }
    for part in stream.chunks(chunk) {
        batch.insert_batch(part);
    }
    assert_eq!(
        scalar.report().entries(),
        batch.report().entries(),
        "reports diverge"
    );
    for &p in probes {
        assert_eq!(scalar.estimate(p), batch.estimate(p), "estimate({p})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    // The dyadic bank's batch ≡ scalar contract lives in prop_dyadic.rs
    // (its levels need a folded key space to stay affordable here).
    fn all_point_summaries_batch_equals_element_wise(
        seed in 0u64..1 << 32,
        chunk in 1usize..20_000,
    ) {
        let (stream, probes) = workload(seed);
        let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();

        assert_equiv(
            SimpleListHh::new(params, N, M as u64, seed).unwrap(),
            SimpleListHh::new(params, N, M as u64, seed).unwrap(),
            &stream, chunk, &probes,
        );
        assert_equiv(
            OptimalListHh::new(params, N, M as u64, seed).unwrap(),
            OptimalListHh::new(params, N, M as u64, seed).unwrap(),
            &stream, chunk, &probes,
        );
        assert_equiv(
            MisraGriesBaseline::new(EPS, PHI, N),
            MisraGriesBaseline::new(EPS, PHI, N),
            &stream, chunk, &probes,
        );
        assert_equiv(
            SpaceSaving::new(EPS, PHI, N),
            SpaceSaving::new(EPS, PHI, N),
            &stream, chunk, &probes,
        );
        assert_equiv(
            LossyCounting::new(EPS, PHI, N),
            LossyCounting::new(EPS, PHI, N),
            &stream, chunk, &probes,
        );
        assert_equiv(
            StickySampling::new(EPS, PHI, DELTA, N, seed),
            StickySampling::new(EPS, PHI, DELTA, N, seed),
            &stream, chunk, &probes,
        );
        assert_equiv(
            CountMin::new(EPS, PHI, DELTA, N, seed),
            CountMin::new(EPS, PHI, DELTA, N, seed),
            &stream, chunk, &probes,
        );
        assert_equiv(
            CountSketch::new(EPS, PHI, DELTA, N, seed),
            CountSketch::new(EPS, PHI, DELTA, N, seed),
            &stream, chunk, &probes,
        );
    }

    #[test]
    fn degenerate_batch_shapes_are_safe(seed in 0u64..1 << 32) {
        // Empty batches, single-element batches, and a batch larger than
        // the stream must all be handled by every override.
        let (stream, probes) = workload(seed ^ 0x5A5A);
        let short = &stream[..4096];
        let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();

        let mut a = OptimalListHh::new(params, N, M as u64, seed).unwrap();
        let mut b = OptimalListHh::new(params, N, M as u64, seed).unwrap();
        a.insert_batch(&[]);
        for &x in short {
            a.insert_batch(std::slice::from_ref(&x));
        }
        b.insert_batch(short);
        prop_assert_eq!(a.samples(), b.samples());
        for &p in &probes {
            prop_assert_eq!(a.estimate(p), b.estimate(p));
        }

        let mut c = SpaceSaving::new(EPS, PHI, N);
        let mut d = SpaceSaving::new(EPS, PHI, N);
        c.insert_batch(&[]);
        c.insert_batch(short);
        for &x in short {
            d.insert(x);
        }
        prop_assert_eq!(c.entries(), d.entries());
    }
}
