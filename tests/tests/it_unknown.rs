//! Unknown-stream-length integration (Theorem 7/8): the wrappers must
//! match their known-length counterparts across orders of magnitude of m,
//! on realistic (Zipf) workloads, without ever being told m.

use hh_core::{
    Constants, HeavyHitters, HhParams, PositionTracking, SimpleListHh, StreamSummary,
    UnknownLengthHh,
};
use hh_space::SpaceUsage;
use hh_streams::{collect_stream, ExactCounts, ZipfGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn zipf(m: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ZipfGenerator::new(1 << 32, 1.5).scrambled(&mut rng);
    collect_stream(&mut g, m, &mut rng)
}

#[test]
fn wrapper_matches_known_length_on_zipf() {
    let params = HhParams::with_delta(0.1, 0.3, 0.1).unwrap();
    for m in [4_000usize, 400_000] {
        let stream = zipf(m, m as u64);
        let oracle = ExactCounts::from_stream(&stream);
        let truth: Vec<u64> = oracle.heavy_hitters(0.3).iter().map(|&(i, _)| i).collect();

        let mut known = SimpleListHh::new(params, 1 << 32, m as u64, 1).unwrap();
        known.insert_all(&stream);
        let mut unknown = UnknownLengthHh::new(params, 1 << 32, 2).unwrap();
        unknown.insert_all(&stream);

        for &item in &truth {
            assert!(known.report().contains(item), "known m={m}: missed {item}");
            assert!(
                unknown.report().contains(item),
                "unknown m={m}: missed {item}"
            );
        }
        // Neither reports forbidden items.
        for &f in oracle.forbidden(0.3, 0.1).iter().take(50) {
            assert!(!unknown.report().contains(f), "unknown m={m}: leaked {f}");
        }
    }
}

#[test]
fn wrapper_space_is_length_insensitive() {
    // Growing m by 100x must not grow the wrapper's space accordingly —
    // that is the whole point of Theorem 7.
    let params = HhParams::with_delta(0.1, 0.3, 0.1).unwrap();
    let mut bits = Vec::new();
    for m in [10_000usize, 1_000_000] {
        let stream = zipf(m, 77);
        let mut w = UnknownLengthHh::with_options(
            params,
            1 << 32,
            3,
            Constants::default(),
            PositionTracking::Morris,
        )
        .unwrap();
        w.insert_all(&stream);
        bits.push(w.model_bits());
    }
    let ratio = bits[1] as f64 / bits[0] as f64;
    assert!(
        ratio < 3.0,
        "100x longer stream grew space {ratio}x: {bits:?}"
    );
}

#[test]
fn morris_tracking_stays_sublogarithmic() {
    let params = HhParams::with_delta(0.15, 0.4, 0.1).unwrap();
    let mut w = UnknownLengthHh::new(params, 1 << 20, 4).unwrap();
    let mut previous = 0u64;
    // Position-tracking bits may only crawl (gamma of the Morris
    // exponent), even as the stream multiplies.
    for chunk in 0..4 {
        for i in 0..200_000u64 {
            w.insert(i % 64);
        }
        let bits = w.position_bits();
        if chunk > 0 {
            assert!(
                bits <= previous + 64,
                "position bits jumped {previous} -> {bits}"
            );
        }
        previous = bits;
    }
    assert!(previous < 512, "Morris bank stays small: {previous}");
}
