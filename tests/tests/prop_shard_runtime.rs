//! Property suite for the persistent shard runtime: `IngestMode::Parallel`
//! (one worker thread per shard, bounded queues) and
//! `IngestMode::Sequential` (inline fallback, no threads) must be
//! **bit-identical** — same per-shard reports, same point estimates, and
//! the same mid-stream reads at every flush point — for every summary in
//! the workspace, across random shard counts, batch sizes, and flush
//! schedules.
//!
//! This is the contract that makes the single-core fallback safe: a
//! 1-vCPU host silently downgrades `Auto` to `Sequential`, and nothing
//! observable may change. Note the converse also holds on this suite's
//! own host — `Parallel` is *forced*, so the worker path (queue
//! hand-off, buffer recycling, flush barriers, shutdown drain) is
//! genuinely exercised even when `Auto` would have picked `Sequential`.
//!
//! The directed tests at the bottom pin down the failure mode: a worker
//! that panics mid-batch must surface its payload on the ingest thread
//! (via dispatch, flush, or shutdown) rather than deadlock or silently
//! drop data.

use hh_baselines::{
    CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving, StickySampling,
};
use hh_core::{FrequencyEstimator, HeavyHitters, HhParams, OptimalListHh, SimpleListHh};
use hh_core::{Report, StreamSummary};
use hh_dyadic::DyadicHh;
use hh_pipeline::{IngestMode, ShardRuntime};
use hh_streams::{collect_stream, ZipfGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 40_000;
const N: u64 = 1 << 32;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const DELTA: f64 = 0.1;

/// A Zipf stream plus probe ids: the two top (scrambled) ranks, a tail
/// id, and an absent id.
fn workload(seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = ZipfGenerator::new(N, 1.2).scrambled(&mut rng);
    let stream = collect_stream(&mut gen, M, &mut rng);
    let probes = vec![
        gen.id_of_rank(1),
        gen.id_of_rank(2),
        gen.id_of_rank(1000),
        stream.iter().max().unwrap() + 1,
    ];
    (stream, probes)
}

/// Feeds `stream` round-robin through a runtime in the given mode,
/// flushing (and reading every shard) every `flush_every` dispatches,
/// then shuts the runtime down and returns the summaries plus the
/// mid-stream reports in order.
///
/// Chunks alternate between the two dispatch entry points —
/// `dispatch_ref` (copy into a recycled buffer) and `dispatch` (swap the
/// caller's buffer in) — so both hand-off paths are covered.
fn drive<S>(
    summaries: Vec<S>,
    mode: IngestMode,
    stream: &[u64],
    batch: usize,
    flush_every: usize,
) -> (Vec<S>, Vec<Report>)
where
    S: StreamSummary + HeavyHitters + Send + 'static,
{
    let shards = summaries.len();
    let mut rt = ShardRuntime::new(summaries, mode);
    let mut scratch: Vec<u64> = Vec::new();
    let mut mid = Vec::new();
    for (i, part) in stream.chunks(batch.max(1)).enumerate() {
        if i % 2 == 0 {
            rt.dispatch_ref(i % shards, part);
        } else {
            scratch.clear();
            scratch.extend_from_slice(part);
            rt.dispatch(i % shards, &mut scratch);
        }
        if flush_every > 0 && (i + 1) % flush_every == 0 {
            // Read-under-ingest: a flush barrier then a full sweep of
            // per-shard reports, which must match across modes too.
            rt.flush();
            mid.extend(rt.map_summaries(HeavyHitters::report));
        }
    }
    (rt.into_summaries(), mid)
}

/// Runs the same dispatch schedule under `Sequential` and (forced)
/// `Parallel` and asserts the outcomes are indistinguishable.
fn assert_modes_agree<S, F>(
    make: F,
    stream: &[u64],
    shards: usize,
    batch: usize,
    flush_every: usize,
    probes: &[u64],
) where
    S: StreamSummary + HeavyHitters + FrequencyEstimator + Send + 'static,
    F: Fn() -> S,
{
    let mk = || (0..shards).map(|_| make()).collect::<Vec<S>>();
    let (seq, seq_mid) = drive(mk(), IngestMode::Sequential, stream, batch, flush_every);
    let (par, par_mid) = drive(mk(), IngestMode::Parallel, stream, batch, flush_every);
    assert_eq!(seq_mid, par_mid, "mid-stream flush-point reports diverge");
    for (j, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(a.report(), b.report(), "shard {j}: final reports diverge");
        for &p in probes {
            assert_eq!(a.estimate(p), b.estimate(p), "shard {j}: estimate({p})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn all_point_summaries_parallel_equals_sequential(
        seed in 0u64..1 << 32,
        shards in 1usize..5,
        batch in 1usize..8192,
        flush_every in 0usize..8,
    ) {
        let (stream, probes) = workload(seed);
        let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();

        assert_modes_agree(
            || SimpleListHh::new(params, N, M as u64, seed).unwrap(),
            &stream, shards, batch, flush_every, &probes,
        );
        assert_modes_agree(
            || OptimalListHh::new(params, N, M as u64, seed).unwrap(),
            &stream, shards, batch, flush_every, &probes,
        );
        assert_modes_agree(
            || MisraGriesBaseline::new(EPS, PHI, N),
            &stream, shards, batch, flush_every, &probes,
        );
        assert_modes_agree(
            || SpaceSaving::new(EPS, PHI, N),
            &stream, shards, batch, flush_every, &probes,
        );
        assert_modes_agree(
            || LossyCounting::new(EPS, PHI, N),
            &stream, shards, batch, flush_every, &probes,
        );
        assert_modes_agree(
            || StickySampling::new(EPS, PHI, DELTA, N, seed),
            &stream, shards, batch, flush_every, &probes,
        );
        assert_modes_agree(
            || CountMin::new(EPS, PHI, DELTA, N, seed),
            &stream, shards, batch, flush_every, &probes,
        );
        assert_modes_agree(
            || CountSketch::new(EPS, PHI, DELTA, N, seed),
            &stream, shards, batch, flush_every, &probes,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn dyadic_banks_parallel_equals_sequential(
        seed in 0u64..1 << 32,
        shards in 1usize..4,
        batch in 1usize..4096,
        flush_every in 0usize..6,
    ) {
        // The ninth summary, folded into a 16-bit key space so the
        // 16-level banks stay affordable at proptest scale. Coarser ε
        // than the point summaries: the bank splits it across levels.
        let (stream, probes) = workload(seed);
        let stream: Vec<u64> = stream.iter().map(|&x| x & 0xFFFF).collect();
        let probes: Vec<u64> = probes.iter().map(|&x| x & 0xFFFF).collect();
        assert_modes_agree(
            || DyadicHh::count_min(0.1, PHI, DELTA, 1 << 16, seed).unwrap(),
            &stream, shards, batch, flush_every, &probes,
        );
        let params = HhParams::with_delta(0.1, PHI, DELTA).unwrap();
        assert_modes_agree(
            || DyadicHh::optimal(params, 1 << 16, M as u64, seed, seed ^ 1).unwrap(),
            &stream, shards, batch, flush_every, &probes,
        );
    }
}

/// The sentinel that makes a [`Bomb`] worker blow up mid-batch.
const MAGIC: u64 = 0xDEAD_BEEF;

/// A minimal summary whose `insert` panics on [`MAGIC`] — the directed
/// probe for worker-panic propagation.
#[derive(Debug, Default)]
struct Bomb {
    count: u64,
}

impl StreamSummary for Bomb {
    fn insert(&mut self, item: u64) {
        assert!(item != MAGIC, "bomb tripped");
        self.count += 1;
    }
}

#[test]
fn worker_panic_propagates_on_dispatch_and_shutdown() {
    // Forced Parallel: workers exist even on a single-core host, so the
    // propagation path is exercised everywhere this suite runs.
    let mut rt = ShardRuntime::new(vec![Bomb::default(), Bomb::default()], IngestMode::Parallel);
    assert!(rt.is_parallel());
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        rt.dispatch_ref(0, &[1, 2, MAGIC, 3]);
        // The bounded queue (not an unbounded buffer) guarantees the
        // ingest side observes the death in finitely many dispatches;
        // `into_summaries` joins and re-raises if none of them did.
        for _ in 0..64 {
            rt.dispatch_ref(0, &[1, 2, 3]);
        }
        drop(rt.into_summaries());
    }))
    .expect_err("worker panic must reach the ingest thread");
    let msg = err
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| err.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string payload>");
    assert!(msg.contains("bomb tripped"), "unexpected payload: {msg}");
}

#[test]
fn worker_panic_fails_flush_instead_of_deadlocking() {
    let mut rt = ShardRuntime::new(vec![Bomb::default()], IngestMode::Parallel);
    rt.dispatch_ref(0, &[MAGIC]);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        // FIFO ordering puts the flush job behind the fatal batch: the
        // worker dies first, the ack channel drops, and flush must
        // report that rather than wait forever.
        rt.flush();
    }))
    .expect_err("flush over a dead worker must fail loudly");
    let msg = err
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| err.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string payload>");
    assert!(
        msg.contains("shard worker panicked"),
        "unexpected payload: {msg}"
    );
}
