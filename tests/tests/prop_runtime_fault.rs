//! Fault-injection suite for the shard runtime (PR 7): worker panics,
//! stalls, and queue saturation are injected through the `hh-faults`
//! hooks, and the runtime must degrade exactly as documented —
//! quarantine the dead shard, keep every other shard ingesting and
//! serving reads, account for every dropped item, and rebuild the
//! shard from its last checkpoint on [`ShardRuntime::recover`].
//!
//! Everything here runs under [`FailurePolicy::Quarantine`]; the
//! default propagate-the-panic behavior is pinned separately by
//! `prop_shard_runtime.rs`.

use hh_baselines::MisraGriesBaseline;
use hh_core::MisraGries;
use hh_faults::{FaultSwitch, FaultySummary};
use hh_pipeline::{
    Backpressure, FailurePolicy, FlushError, IngestMode, RecoverError, ShardRuntime,
    ShardedPipeline,
};
use std::sync::Arc;
use std::time::Duration;

/// Three shards of `FaultySummary<MisraGries>`, each with its own
/// switch, in the given mode with quarantine enabled.
fn faulty_runtime(
    shards: usize,
    mode: IngestMode,
) -> (
    ShardRuntime<FaultySummary<MisraGries>>,
    Vec<Arc<FaultSwitch>>,
) {
    let switches: Vec<_> = (0..shards).map(|_| FaultSwitch::new()).collect();
    let summaries = switches
        .iter()
        .map(|sw| FaultySummary::new(MisraGries::new(64, 40), Arc::clone(sw)))
        .collect();
    let mut rt = ShardRuntime::new(summaries, mode);
    rt.set_failure_policy(FailurePolicy::Quarantine);
    (rt, switches)
}

fn processed(rt: &ShardRuntime<FaultySummary<MisraGries>>, j: usize) -> u64 {
    rt.with_summary(j, |s| s.inner().processed())
}

#[test]
fn quarantined_shard_recovers_from_its_checkpoint() {
    let (mut rt, switches) = faulty_runtime(3, IngestMode::Parallel);
    assert!(rt.is_parallel());

    // Seed every shard, then checkpoint: this is the state recover()
    // must reproduce.
    for j in 0..3 {
        rt.dispatch_ref(j, &vec![j as u64; 100]);
    }
    assert_eq!(rt.checkpoint(), 3);
    let at_checkpoint = processed(&rt, 1);
    assert_eq!(at_checkpoint, 100);

    // Kill shard 1 mid-batch and let the barrier discover the body.
    switches[1].arm_panic_after(0);
    rt.dispatch_ref(1, &[42; 50]);
    rt.flush();
    let health = rt.health();
    assert_eq!(health.poisoned.len(), 1, "exactly one shard quarantined");
    assert_eq!(health.poisoned[0].0, 1);
    assert!(
        health.poisoned[0].1.contains("injected fault"),
        "panic message surfaces in health: {:?}",
        health.poisoned[0].1
    );

    // The other shards keep ingesting and serving reads...
    rt.dispatch_ref(0, &[7; 25]);
    rt.dispatch_ref(2, &[9; 25]);
    rt.flush();
    assert_eq!(processed(&rt, 0), 125);
    assert_eq!(processed(&rt, 2), 125);

    // ...while traffic for the dead shard is shed and counted.
    rt.dispatch_ref(1, &[42; 30]);
    assert!(rt.health().shed_items >= 30, "poisoned shard sheds");

    // A live shard has nothing to recover from.
    assert_eq!(rt.recover(0), Err(RecoverError::NotQuarantined));

    // Recovery restores the checkpointed state and respawns the worker.
    let report = rt.recover(1).expect("checkpoint restores");
    assert!(report.checksum_verified, "checkpoints use the v3 codec");
    assert!(rt.health().poisoned.is_empty());
    assert_eq!(processed(&rt, 1), at_checkpoint);

    // The rebuilt shard ingests again (its fresh switch is disarmed).
    rt.dispatch_ref(1, &[42; 60]);
    rt.flush();
    assert_eq!(processed(&rt, 1), at_checkpoint + 60);
}

#[test]
fn recover_without_a_checkpoint_is_refused() {
    let (mut rt, switches) = faulty_runtime(2, IngestMode::Parallel);
    switches[0].arm_panic_after(0);
    rt.dispatch_ref(0, &[1; 10]);
    rt.flush();
    assert_eq!(rt.health().poisoned.len(), 1);
    assert_eq!(rt.recover(0), Err(RecoverError::NoCheckpoint));
}

#[test]
fn flush_timeout_names_the_stalled_shard_and_later_succeeds() {
    let (mut rt, switches) = faulty_runtime(2, IngestMode::Parallel);

    // Shard 0's worker sleeps 400ms inside the batch it is ingesting,
    // so a 50ms barrier deadline must expire with shard 0 pending.
    switches[0].stall_for(Duration::from_millis(400));
    rt.dispatch_ref(0, &[5; 10]);
    rt.dispatch_ref(1, &[6; 10]);
    let err = rt.flush_timeout(Duration::from_millis(50)).unwrap_err();
    match err {
        FlushError::TimedOut { pending } => {
            assert!(pending.contains(&0), "stalled shard is named: {pending:?}")
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }

    // The batch was delayed, not lost: once the stall clears, a plain
    // flush drains it.
    switches[0].clear_stall();
    rt.flush();
    assert_eq!(processed(&rt, 0), 10);
    assert_eq!(processed(&rt, 1), 10);
    assert!(rt.health().all_healthy(), "a stall is not a failure");
}

#[test]
fn shed_backpressure_drops_batches_instead_of_blocking() {
    let (mut rt, switches) = faulty_runtime(1, IngestMode::Parallel);
    rt.set_backpressure(Backpressure::Shed);

    // With the worker stalled 300ms per batch and a queue two deep,
    // eight rapid-fire batches cannot all fit: the overflow must be
    // shed (and counted), never blocked on.
    switches[0].stall_for(Duration::from_millis(300));
    for _ in 0..8 {
        rt.dispatch_ref(0, &[3; 100]);
    }
    switches[0].clear_stall();
    rt.flush();

    let shed = rt.health().shed_items;
    assert!(shed >= 100, "at least one batch was shed, got {shed}");
    assert_eq!(
        processed(&rt, 0) + shed,
        800,
        "every item is either ingested or counted as shed"
    );
}

#[test]
fn sequential_mode_quarantines_inline_panics() {
    let (mut rt, switches) = faulty_runtime(2, IngestMode::Sequential);
    assert!(!rt.is_parallel());

    rt.dispatch_ref(0, &[1; 40]);
    rt.dispatch_ref(1, &[2; 40]);
    assert_eq!(rt.checkpoint(), 2);

    // An inline panic is caught, the shard poisoned, the items charged.
    switches[0].arm_panic_after(0);
    rt.dispatch_ref(0, &[1; 15]);
    let health = rt.health();
    assert_eq!(health.poisoned.len(), 1);
    assert_eq!(health.poisoned[0].0, 0);
    assert_eq!(health.shed_items, 15);

    // The sibling shard is untouched, and recovery works without any
    // worker threads in the picture.
    rt.dispatch_ref(1, &[2; 10]);
    assert_eq!(processed(&rt, 1), 50);
    let report = rt.recover(0).expect("sequential recover");
    assert!(report.checksum_verified);
    rt.dispatch_ref(0, &[1; 5]);
    assert_eq!(processed(&rt, 0), 45);
}

#[test]
fn pipeline_surface_reports_health_and_supports_recovery() {
    let switches: Vec<_> = (0..4).map(|_| FaultSwitch::new()).collect();
    let shards: Vec<_> = switches
        .iter()
        .map(|sw| FaultySummary::new(MisraGriesBaseline::new(0.05, 0.15, 1 << 40), Arc::clone(sw)))
        .collect();
    let mut pipe = ShardedPipeline::with_mode(shards, 0xFEED, 0.05, IngestMode::Parallel);
    pipe.set_failure_policy(FailurePolicy::Quarantine);
    assert!(pipe.health().all_healthy());

    let warmup: Vec<u64> = (0..2_000).map(|i| i % 50).collect();
    pipe.ingest(&warmup);
    assert_eq!(pipe.runtime_mut().checkpoint(), 4);

    // Panic whichever shard owns a known hot key, through the pipeline's
    // own routing.
    let hot = 7u64;
    let victim = pipe.shard_of(hot);
    switches[victim].arm_panic_after(0);
    pipe.ingest(&vec![hot; 100]);

    // The surviving shards still produce a report, and health names the
    // quarantined shard.
    let report = pipe.report();
    let health = pipe.health();
    assert_eq!(health.poisoned.len(), 1);
    assert_eq!(health.poisoned[0].0, victim);
    drop(report);

    // Recover through the exposed runtime and keep streaming.
    pipe.runtime_mut().recover(victim).expect("recover");
    assert!(pipe.health().poisoned.is_empty());
    pipe.ingest(&vec![hot; 500]);
    let report = pipe.report();
    assert!(
        report.contains(hot),
        "recovered shard reports its heavy hitter again"
    );
}
