//! Property suite for the dyadic range-query subsystem (PR 9): for
//! both [`DyadicHh`] presets,
//!
//! 1. **planted-prefix recall and suppression** — every dyadic range
//!    carrying at least `(φ+ε)·m` of a planted-prefix stream is
//!    reported by `heavy_ranges(φ)`, and no range below `(φ−ε)·m` is,
//!    across all four stream orderings (Definition 1 lifted from
//!    points to ranges; the gray zone in between is unconstrained);
//! 2. **range estimates track the exact oracle** — `range_estimate`
//!    on arbitrary intervals stays within `ε·m` of exact counting
//!    (and never undercounts on the Count-Min preset);
//! 3. **merge-of-partitions ≡ single-stream** — seed-aligned banks
//!    over an arbitrary positional partition agree with one bank over
//!    the whole stream (exactly for Count-Min, which is deterministic
//!    given the seed; within bounds for the sampled Algorithm-2 bank);
//! 4. **snapshot → restore → continue** — a bank checkpointed
//!    mid-stream and resumed finishes identically to the original.

use hh_baselines::CountMin;
use hh_core::{FrequencyEstimator, HhParams, MergeableSummary, OptimalListHh, StreamSummary};
use hh_dyadic::{seed_aligned_count_min, seed_aligned_optimal, DyadicHh, HeavyRange};
use hh_streams::{arrange, OrderPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

const KEY_BITS: u32 = 16;
const U: u64 = 1 << KEY_BITS;
const M: u64 = 120_000;
const EPS: f64 = 0.04;
const PHI: f64 = 0.15;
const DELTA: f64 = 0.01;

const ORDERINGS: [OrderPolicy; 4] = [
    OrderPolicy::Shuffled,
    OrderPolicy::Sorted,
    OrderPolicy::RoundRobin,
    OrderPolicy::HeavyLast,
];

/// The planted-prefix workload over the 16-bit space, as exact
/// `(address, count)` pairs summing to `M`:
///
/// * block `0xAB00..=0xABFF` (the level-8 node `0xAB`) carries 35%,
///   with one hot host (`0xAB00`, 21%) so the heavy *chain* reaches
///   the leaves on one path and goes light on the sibling paths;
/// * point `0x1234` carries 20% — a heavy leaf with a full ancestor
///   chain;
/// * block `0xCD00..=0xCDFF` carries 9% `< (φ−ε)` — every node it
///   induces must be suppressed;
/// * the rest is background spread at stride 32 across the space
///   (outside the blocks), so no accidental node crosses `φ−ε`.
fn planted_prefix_counts() -> Vec<(u64, u64)> {
    let frac = |f: f64| (f * M as f64).round() as u64;
    let mut counts: Vec<(u64, u64)> = vec![(0xAB00, frac(0.21)), (0x1234, frac(0.20))];
    for h in 1..256u64 {
        counts.push((0xAB00 + h, frac(0.14) / 255));
    }
    for h in 0..256u64 {
        counts.push((0xCD00 + h, frac(0.09) / 256));
    }
    let used: u64 = counts.iter().map(|&(_, c)| c).sum();
    let background: Vec<u64> = (0..U / 32)
        .map(|j| j * 32 + 7)
        .filter(|&a| !(0xAB00..=0xABFF).contains(&a) && !(0xCD00..=0xCDFF).contains(&a))
        .filter(|&a| a != 0x1234)
        .collect();
    let fill = M - used;
    let n = background.len() as u64;
    for (j, &a) in background.iter().enumerate() {
        let c = fill / n + u64::from((j as u64) < fill % n);
        if c > 0 {
            counts.push((a, c));
        }
    }
    counts
}

/// Exact mass of every dyadic node touched by `counts`, keyed by
/// `(level, index)` — the ground-truth oracle.
fn node_masses(counts: &[(u64, u64)]) -> HashMap<(u32, u64), u64> {
    let mut masses = HashMap::new();
    for &(a, c) in counts {
        for k in 1..=KEY_BITS {
            *masses.entry((k, a >> (KEY_BITS - k))).or_insert(0u64) += c;
        }
    }
    masses
}

/// Exact mass of the inclusive interval `[lo, hi]`.
fn interval_mass(counts: &[(u64, u64)], lo: u64, hi: u64) -> u64 {
    counts
        .iter()
        .filter(|&&(a, _)| lo <= a && a <= hi)
        .map(|&(_, c)| c)
        .sum()
}

/// Definition-1 agreement on ranges: every node at or above the
/// `(φ+ε)·m` line is reported, nothing below the `(φ−ε)·m` line is.
fn assert_recall_and_suppression(
    reported: &[HeavyRange],
    masses: &HashMap<(u32, u64), u64>,
    ctx: &str,
) {
    let must = (PHI + EPS) * M as f64;
    let must_not = (PHI - EPS) * M as f64;
    let got: HashSet<(u32, u64)> = reported.iter().map(|r| (r.level, r.index)).collect();
    for (&(k, i), &c) in masses {
        if c as f64 >= must {
            assert!(
                got.contains(&(k, i)),
                "{ctx}: heavy node level {k} index {i:#x} (mass {c}) missing"
            );
        }
    }
    for r in reported {
        let c = masses.get(&(r.level, r.index)).copied().unwrap_or(0);
        assert!(
            c as f64 >= must_not,
            "{ctx}: light node level {} index {:#x} (mass {c}) reported",
            r.level,
            r.index
        );
    }
}

/// Cuts `stream` into `parts` random contiguous chunks (any chunk
/// possibly empty) — an arbitrary positional partition.
fn random_partition(stream: &[u64], parts: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cuts: Vec<usize> = (0..parts - 1)
        .map(|_| rng.gen_range(0..=stream.len()))
        .collect();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for &c in &cuts {
        out.push(stream[start..c].to_vec());
        start = c;
    }
    out.push(stream[start..].to_vec());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn count_min_bank_recall_and_suppression_across_orderings(
        seed in 0u64..1 << 32,
    ) {
        let counts = planted_prefix_counts();
        let masses = node_masses(&counts);
        for (oi, &order) in ORDERINGS.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed ^ oi as u64);
            let stream = arrange(&counts, order, &mut rng);
            let mut bank = DyadicHh::count_min(EPS, PHI, DELTA, U, seed ^ 0xD1).unwrap();
            bank.insert_batch(&stream);
            let ranges = bank.heavy_ranges(PHI);
            assert_recall_and_suppression(&ranges, &masses, &format!("cm/{order:?}"));
        }
    }

    #[test]
    fn optimal_bank_recall_and_suppression_across_orderings(
        seed in 0u64..1 << 32,
    ) {
        let counts = planted_prefix_counts();
        let masses = node_masses(&counts);
        let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
        for (oi, &order) in ORDERINGS.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed ^ oi as u64);
            let stream = arrange(&counts, order, &mut rng);
            let mut bank =
                DyadicHh::optimal(params, U, M, seed ^ 0xD2, seed ^ oi as u64).unwrap();
            bank.insert_batch(&stream);
            let ranges = bank.heavy_ranges(PHI);
            assert_recall_and_suppression(&ranges, &masses, &format!("algo2/{order:?}"));
        }
    }

    #[test]
    fn range_estimates_track_the_exact_oracle(
        seed in 0u64..1 << 32,
    ) {
        let counts = planted_prefix_counts();
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
        let mut bank = DyadicHh::count_min(EPS, PHI, DELTA, U, seed ^ 0xD3).unwrap();
        bank.insert_batch(&stream);
        // Fixed ranges that straddle the planted structure, plus random
        // intervals: Count-Min never undercounts, and the bank's
        // calibration (ε split over the ≤2L decomposition nodes) keeps
        // the total overcount within ε·m.
        let mut ranges = vec![
            (0xAB00u64, 0xABFFu64),
            (0xA000, 0xBFFF),
            (0x1234, 0x1234),
            (0xCD00, 0xCDFF),
            (0, U - 1),
        ];
        for _ in 0..8 {
            let a = rng.gen_range(0..U);
            let b = rng.gen_range(0..U);
            ranges.push((a.min(b), a.max(b)));
        }
        for (lo, hi) in ranges {
            let truth = interval_mass(&counts, lo, hi) as f64;
            let est = bank.range_estimate(lo, hi);
            prop_assert!(est >= truth, "[{lo:#x},{hi:#x}]: {est} under {truth}");
            prop_assert!(
                est <= truth + EPS * M as f64,
                "[{lo:#x},{hi:#x}]: {est} vs {truth} beyond eps*m"
            );
        }
    }

    #[test]
    fn count_min_merge_of_partitions_matches_single_stream(
        seed in 0u64..1 << 32,
        parts in 2usize..6,
    ) {
        let counts = planted_prefix_counts();
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
        let chunks = random_partition(&stream, parts, seed ^ 0x9A);
        let mut banks = seed_aligned_count_min(EPS, PHI, DELTA, U, parts, seed ^ 0xD4).unwrap();
        for (b, chunk) in banks.iter_mut().zip(&chunks) {
            b.insert_batch(chunk);
        }
        let mut merged = banks.remove(0);
        for b in &banks {
            merged.merge_from(b).expect("seed-aligned banks must merge");
        }
        let mut single = DyadicHh::count_min(EPS, PHI, DELTA, U, seed ^ 0xD4).unwrap();
        single.insert_batch(&stream);
        // Count-Min is deterministic given the seed: cell-wise sums of
        // the partition equal the whole stream's, so point estimates,
        // range estimates, and the heavy forest agree exactly.
        for probe in [0xAB00u64, 0x1234, 0xCD07, 0xE007] {
            prop_assert_eq!(
                merged.estimate(probe).to_bits(),
                single.estimate(probe).to_bits()
            );
        }
        for (lo, hi) in [(0xAB00u64, 0xABFFu64), (0x1000, 0x8FFF), (0, U - 1)] {
            prop_assert_eq!(
                merged.range_estimate(lo, hi).to_bits(),
                single.range_estimate(lo, hi).to_bits()
            );
        }
        prop_assert_eq!(merged.heavy_ranges(PHI), single.heavy_ranges(PHI));
        prop_assert_eq!(merged.processed(), single.processed());
    }

    #[test]
    fn optimal_merge_of_partitions_agrees_within_bounds(
        seed in 0u64..1 << 32,
        parts in 2usize..6,
    ) {
        let counts = planted_prefix_counts();
        let masses = node_masses(&counts);
        let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
        let chunks = random_partition(&stream, parts, seed ^ 0x9B);
        let mut banks = seed_aligned_optimal(params, U, M, parts, seed ^ 0xD5).unwrap();
        for (b, chunk) in banks.iter_mut().zip(&chunks) {
            b.insert_batch(chunk);
        }
        let mut merged = banks.remove(0);
        for b in &banks {
            merged.merge_from(b).expect("seed-aligned banks must merge");
        }
        // The sampled bank is not interleaving-deterministic, so the
        // contract is the guarantee itself: the merged bank passes the
        // same recall/suppression test a single-stream bank does.
        assert_recall_and_suppression(&merged.heavy_ranges(PHI), &masses, "algo2/merged");
        for (lo, hi) in [(0xAB00u64, 0xABFFu64), (0xCD00, 0xCDFF)] {
            let truth = interval_mass(&counts, lo, hi) as f64;
            let est = merged.range_estimate(lo, hi);
            prop_assert!(
                (est - truth).abs() <= 2.0 * EPS * M as f64,
                "[{lo:#x},{hi:#x}]: merged {est} vs truth {truth}"
            );
        }
    }
}

#[test]
fn snapshot_resume_continues_bit_identically() {
    // Checkpoint mid-stream, restore, finish on both copies: the
    // Count-Min bank must match byte for byte (fully deterministic
    // state), the Algorithm-2 bank report-for-report (its RNG state
    // travels in the snapshot).
    let counts = planted_prefix_counts();
    let mut rng = StdRng::seed_from_u64(11);
    let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
    let (head, tail) = stream.split_at(stream.len() / 2);

    let mut cm = DyadicHh::count_min(EPS, PHI, DELTA, U, 21).unwrap();
    cm.insert_batch(head);
    let mut resumed = DyadicHh::<CountMin>::from_bytes(&cm.to_bytes()).unwrap();
    cm.insert_batch(tail);
    resumed.insert_batch(tail);
    assert_eq!(cm.to_bytes(), resumed.to_bytes());
    assert_eq!(cm.heavy_ranges(PHI), resumed.heavy_ranges(PHI));

    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut a2 = DyadicHh::optimal(params, U, M, 22, 23).unwrap();
    a2.insert_batch(head);
    let mut resumed = DyadicHh::<OptimalListHh>::from_bytes(&a2.to_bytes()).unwrap();
    a2.insert_batch(tail);
    resumed.insert_batch(tail);
    assert_eq!(a2.heavy_ranges(PHI), resumed.heavy_ranges(PHI));
    assert_eq!(
        a2.range_estimate(0, U - 1).to_bits(),
        resumed.range_estimate(0, U - 1).to_bits()
    );
    assert_eq!(a2.processed(), resumed.processed());
}

#[test]
fn batch_and_scalar_ingestion_are_bit_identical() {
    let counts = planted_prefix_counts();
    let mut rng = StdRng::seed_from_u64(31);
    let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
    let params = HhParams::with_delta(EPS, PHI, DELTA).unwrap();
    let mut batched = DyadicHh::optimal(params, U, M, 41, 42).unwrap();
    let mut scalar = DyadicHh::optimal(params, U, M, 41, 42).unwrap();
    batched.insert_batch(&stream);
    for &x in &stream {
        scalar.insert(x);
    }
    assert_eq!(batched.to_bytes(), scalar.to_bytes());
}
