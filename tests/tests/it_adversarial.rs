//! Threshold-adversary stress: frequency vectors designed so that any
//! algorithm blurring counts by more than εm must either miss a heavy
//! item or report a forbidden one.

use hh_baselines::{MisraGriesBaseline, SpaceSaving};
use hh_core::{HeavyHitters, HhParams, OptimalListHh, SimpleListHh, StreamSummary};
use hh_streams::{arrange, threshold_adversary, OrderPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: u64 = 400_000;
const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const N: u64 = 1 << 40;

fn adversarial_stream(seed: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    // 2 items just above φm, 3 at exactly (φ−ε)m, singleton filler.
    let (counts, heavy, boundary) = threshold_adversary(M, PHI, EPS, 2, 3);
    let mut rng = StdRng::seed_from_u64(seed);
    (
        arrange(&counts, OrderPolicy::Shuffled, &mut rng),
        heavy,
        boundary,
    )
}

fn assert_separates(name: &str, report: &hh_core::Report, heavy: &[u64], boundary: &[u64]) {
    for &h in heavy {
        assert!(report.contains(h), "{name}: missed heavy item {h}");
    }
    for &b in boundary {
        assert!(!report.contains(b), "{name}: leaked boundary item {b}");
    }
}

#[test]
fn algo1_separates_threshold_adversary() {
    let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
    let mut misses = 0;
    for seed in 0..6u64 {
        let (stream, heavy, boundary) = adversarial_stream(seed);
        let mut a = SimpleListHh::new(params, N, M, seed ^ 0xADE1).unwrap();
        a.insert_all(&stream);
        let r = a.report();
        let ok = heavy.iter().all(|&h| r.contains(h)) && boundary.iter().all(|&b| !r.contains(b));
        misses += u64::from(!ok);
    }
    assert!(
        misses <= 1,
        "{misses}/6 adversarial trials failed (delta=0.1)"
    );
}

#[test]
fn algo2_separates_threshold_adversary() {
    let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
    let mut misses = 0;
    for seed in 0..6u64 {
        let (stream, heavy, boundary) = adversarial_stream(seed);
        let mut a = OptimalListHh::new(params, N, M, seed ^ 0xADE2).unwrap();
        a.insert_all(&stream);
        let r = a.report();
        let ok = heavy.iter().all(|&h| r.contains(h)) && boundary.iter().all(|&b| !r.contains(b));
        misses += u64::from(!ok);
    }
    assert!(
        misses <= 1,
        "{misses}/6 adversarial trials failed (delta=0.1)"
    );
}

#[test]
fn deterministic_baselines_separate_exactly() {
    // The deterministic summaries have no δ: they must separate every
    // time.
    let (stream, heavy, boundary) = adversarial_stream(99);
    let mut mg = MisraGriesBaseline::new(EPS, PHI, N);
    mg.insert_all(&stream);
    assert_separates("misra-gries", &mg.report(), &heavy, &boundary);
    let mut ss = SpaceSaving::new(EPS, PHI, N);
    ss.insert_all(&stream);
    assert_separates("space-saving", &ss.report(), &heavy, &boundary);
}

#[test]
fn singleton_flood_does_not_evict_heavy_items() {
    // A hostile tail of ~200k distinct singletons churns every table; the
    // heavy items must survive in all summaries.
    let (stream, heavy, _) = adversarial_stream(7);
    let distinct_singletons = stream
        .iter()
        .filter(|&&x| x >= 1_000_000)
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(
        distinct_singletons > 40_000,
        "flood is real: {distinct_singletons}"
    );
    let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
    let mut a = SimpleListHh::new(params, N, M, 13).unwrap();
    a.insert_all(&stream);
    for &h in &heavy {
        assert!(a.report().contains(h), "heavy item {h} evicted by flood");
    }
}
