//! Determinism contract: every algorithm owns a seeded StdRng, so the
//! same `(params, stream, seed)` triple must reproduce `report()`
//! bit-for-bit across runs, and `insert_all` must be observationally
//! identical to item-by-item `insert`.

use hh_core::prelude::*;
use hh_integration::planted;

const M: u64 = 80_000;
const HEAVY: [(u64, f64); 3] = [(1, 0.25), (2, 0.15), (3, 0.08)];

fn params() -> HhParams {
    HhParams::with_delta(0.02, 0.07, 0.1).unwrap()
}

#[test]
fn simple_list_hh_same_seed_same_report() {
    let stream = planted(M, &HEAVY, 11);
    let run = |seed: u64| {
        let mut a = SimpleListHh::new(params(), 1 << 40, M, seed).unwrap();
        a.insert_all(&stream);
        a.report()
    };
    let first = run(42);
    let second = run(42);
    assert_eq!(first.entries(), second.entries());
    // The guarantee is per-seed reproducibility, not seed-independence:
    // the report must still be a valid heavy-hitter set under another
    // seed, but its sampled internals may differ.
    assert!(first.contains(1) && first.contains(2));
}

#[test]
fn optimal_list_hh_same_seed_same_report() {
    let stream = planted(M, &HEAVY, 13);
    let run = || {
        let mut a = OptimalListHh::new(params(), 1 << 40, M, 1234).unwrap();
        a.insert_all(&stream);
        a.report()
    };
    let first = run();
    let second = run();
    assert_eq!(first.entries(), second.entries());
    assert!(first.contains(1) && first.contains(2));
}

#[test]
fn unknown_length_same_seed_same_report() {
    // The Theorem-7 wrapper restarts instances adaptively; determinism
    // must survive the restart schedule too.
    let stream = planted(M, &HEAVY, 17);
    let run = || {
        let mut a = UnknownLengthHh::new(params(), 1 << 40, 999).unwrap();
        a.insert_all(&stream);
        a.report()
    };
    assert_eq!(run().entries(), run().entries());
}

#[test]
fn insert_all_matches_item_by_item_inserts() {
    // `insert_all`'s default impl must be observationally identical to
    // repeated `insert` — algorithms overriding it for speed may not
    // change results.
    let stream = planted(M, &HEAVY, 19);

    let mut batched = SimpleListHh::new(params(), 1 << 40, M, 7).unwrap();
    batched.insert_all(&stream);
    let mut looped = SimpleListHh::new(params(), 1 << 40, M, 7).unwrap();
    for &x in &stream {
        looped.insert(x);
    }
    assert_eq!(batched.report().entries(), looped.report().entries());

    let mut batched = OptimalListHh::new(params(), 1 << 40, M, 9).unwrap();
    batched.insert_all(&stream);
    let mut looped = OptimalListHh::new(params(), 1 << 40, M, 9).unwrap();
    for &x in &stream {
        looped.insert(x);
    }
    assert_eq!(batched.report().entries(), looped.report().entries());
}
