//! The §4 reductions executed end to end with the real algorithms — if
//! any of these decoding protocols stopped working, the corresponding
//! lower-bound argument would no longer be exercised by the codebase.

use hh_lower_bounds::protocol::success_rate;
use hh_lower_bounds::reductions::{
    borda_perm, greater_than, hh_indexing, max_indexing, maximin_distance, min_indexing,
};
use hh_lower_bounds::{EpsPermInstance, GreaterThanInstance, IndexingInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn theorem_9_indexing_to_heavy_hitters() {
    let rate = success_rate(20, |seed| {
        let mut rng = StdRng::seed_from_u64(0x900 + seed);
        let inst = IndexingInstance::random(8, 32, &mut rng);
        hh_indexing::run(&inst, 600, 1200, seed)
    });
    assert!(rate >= 0.9, "Thm 9 success rate {rate}");
}

#[test]
fn theorem_10_indexing_to_maximum() {
    let rate = success_rate(20, |seed| {
        let mut rng = StdRng::seed_from_u64(0xA00 + seed);
        let inst = IndexingInstance::random(16, 16, &mut rng);
        max_indexing::run(&inst, 500, seed)
    });
    assert!(rate >= 0.9, "Thm 10 success rate {rate}");
}

#[test]
fn theorem_11_indexing_to_minimum() {
    let rate = success_rate(20, |seed| {
        let mut rng = StdRng::seed_from_u64(0xB00 + seed);
        let inst = IndexingInstance::random(2, 25, &mut rng);
        min_indexing::run(&inst, seed)
    });
    assert!(rate >= 0.9, "Thm 11 success rate {rate}");
}

#[test]
fn theorem_12_perm_to_borda() {
    let rate = success_rate(15, |seed| {
        let mut rng = StdRng::seed_from_u64(0xC00 + seed);
        let inst = EpsPermInstance::random(32, 8, &mut rng);
        borda_perm::run(&inst, seed)
    });
    assert!((rate - 1.0).abs() < f64::EPSILON, "Thm 12 decodes exactly");
}

#[test]
fn theorem_13_distance_to_maximin() {
    let rate = success_rate(15, |seed| {
        let mut rng = StdRng::seed_from_u64(0xD00 + seed);
        let inst = maximin_distance::DistanceInstance::random(64, 6, &mut rng);
        maximin_distance::run(&inst, 3, seed)
    });
    assert!(rate >= 0.9, "Thm 13 success rate {rate}");
}

#[test]
fn theorem_14_greater_than_loglog() {
    let rate = success_rate(12, |seed| {
        let mut rng = StdRng::seed_from_u64(0xE00 + seed);
        let inst = GreaterThanInstance::random(13, &mut rng);
        greater_than::run(&inst, 13, seed)
    });
    assert!(rate >= 0.9, "Thm 14 success rate {rate}");
}

#[test]
fn messages_always_dominate_floors() {
    // Ratio ≥ 1 for every reduction on a handful of instances: the upper
    // bounds cannot undercut the proven communication floors.
    let mut rng = StdRng::seed_from_u64(0xF00);
    let o = hh_indexing::run(&IndexingInstance::random(8, 32, &mut rng), 600, 1200, 1);
    assert!(o.ratio() >= 1.0, "Thm 9 ratio {}", o.ratio());
    let o = max_indexing::run(&IndexingInstance::random(16, 16, &mut rng), 400, 2);
    assert!(o.ratio() >= 1.0, "Thm 10 ratio {}", o.ratio());
    let o = min_indexing::run(&IndexingInstance::random(2, 25, &mut rng), 3);
    assert!(o.ratio() >= 1.0, "Thm 11 ratio {}", o.ratio());
    let o = borda_perm::run(&EpsPermInstance::random(32, 8, &mut rng), 4);
    assert!(o.ratio() >= 1.0, "Thm 12 ratio {}", o.ratio());
}
