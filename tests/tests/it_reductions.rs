//! The §4 reductions executed end to end with the real algorithms,
//! promoted from single-shape smoke runs to deterministic property
//! sweeps: every theorem's decoding protocol is driven across a grid
//! of instance shapes with seeds derived from the shape (no ambient
//! randomness — a failure reproduces by name), and two properties are
//! enforced on every run:
//!
//! 1. **decoding works** — the per-shape success rate clears the
//!    theorem's threshold, so the protocol the lower-bound argument
//!    rests on is real, not vacuous;
//! 2. **the message dominates the floor** — `ratio() ≥ 1` on every
//!    single run: the algorithm state Alice sends is never smaller
//!    than the communication floor the theorem proves, which is
//!    exactly the "space ≥ bits" direction of the §4 arguments.
//!
//! A third sweep checks the floors themselves are monotone in the
//! instance size (a floor that failed to grow would make the
//! asymptotic claim unfalsifiable at test scale).

use hh_lower_bounds::protocol::{success_rate, ReductionOutcome};
use hh_lower_bounds::reductions::{
    borda_perm, greater_than, hh_indexing, max_indexing, maximin_distance, min_indexing,
};
use hh_lower_bounds::{EpsPermInstance, GreaterThanInstance, IndexingInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic per-(theorem, shape, trial) seed: the whole suite is
/// a pure function of these constants.
fn det_seed(theorem: u64, shape: u64, trial: u64) -> u64 {
    theorem
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(shape.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(trial)
}

/// Runs `trials` deterministic executions of `run`, asserting
/// `ratio() ≥ 1` on every one, and returns the success rate.
fn sweep(
    theorem: u64,
    shape: u64,
    trials: u64,
    mut run: impl FnMut(u64) -> ReductionOutcome,
    ctx: &str,
) -> f64 {
    success_rate(trials, |trial| {
        let out = run(det_seed(theorem, shape, trial));
        assert!(
            out.ratio() >= 1.0,
            "{ctx} shape {shape} trial {trial}: message {} bits under floor {}",
            out.message_bits,
            out.lower_bound_units
        );
        out
    })
}

#[test]
fn theorem_9_indexing_to_heavy_hitters_across_shapes() {
    // (alphabet A, string length t): the Ω(ε⁻¹ log φ⁻¹) term with the
    // effective ε, φ set by the copy counts.
    for (shape, &(alphabet, t)) in [(4u64, 16usize), (8, 32), (16, 8)].iter().enumerate() {
        let rate = sweep(
            9,
            shape as u64,
            10,
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let inst = IndexingInstance::random(alphabet, t, &mut rng);
                hh_indexing::run(&inst, 600, 1200, seed)
            },
            "Thm 9",
        );
        assert!(rate >= 0.9, "Thm 9 A={alphabet} t={t}: rate {rate}");
    }
}

#[test]
fn theorem_10_indexing_to_maximum_across_shapes() {
    // Theorem 10's regime ties the alphabet to the index range
    // (A = t = 1/ε), so the grid varies their common size.
    for (shape, &(alphabet, t)) in [(8u64, 8usize), (16, 16), (32, 32)].iter().enumerate() {
        let rate = sweep(
            10,
            shape as u64,
            10,
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let inst = IndexingInstance::random(alphabet, t, &mut rng);
                max_indexing::run(&inst, 500, seed)
            },
            "Thm 10",
        );
        assert!(rate >= 0.9, "Thm 10 A={alphabet} t={t}: rate {rate}");
    }
}

#[test]
fn theorem_11_indexing_to_minimum_across_shapes() {
    // Binary Indexing (A = 2 is the theorem's regime); t varies.
    for (shape, &t) in [10usize, 25, 40].iter().enumerate() {
        let rate = sweep(
            11,
            shape as u64,
            10,
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let inst = IndexingInstance::random(2, t, &mut rng);
                min_indexing::run(&inst, seed)
            },
            "Thm 11",
        );
        assert!(rate >= 0.9, "Thm 11 t={t}: rate {rate}");
    }
}

#[test]
fn theorem_12_perm_to_borda_across_shapes() {
    // Exact decoding on every shape: the Borda protocol is
    // deterministic once the stream is fixed.
    for (shape, &(n, blocks)) in [(16usize, 4usize), (32, 8), (64, 8)].iter().enumerate() {
        let rate = sweep(
            12,
            shape as u64,
            8,
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let inst = EpsPermInstance::random(n, blocks, &mut rng);
                borda_perm::run(&inst, seed)
            },
            "Thm 12",
        );
        assert!(
            (rate - 1.0).abs() < f64::EPSILON,
            "Thm 12 n={n} blocks={blocks}: must decode exactly, rate {rate}"
        );
    }
}

#[test]
fn theorem_13_distance_to_maximin_across_shapes() {
    // γ must be a perfect square (the codeword grid is √γ × √γ).
    for (shape, &(gamma, rows)) in [(16usize, 4usize), (64, 6), (144, 3)].iter().enumerate() {
        let rate = sweep(
            13,
            shape as u64,
            10,
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let inst = maximin_distance::DistanceInstance::random(gamma, rows, &mut rng);
                maximin_distance::run(&inst, 3, seed)
            },
            "Thm 13",
        );
        assert!(rate >= 0.9, "Thm 13 γ={gamma} rows={rows}: rate {rate}");
    }
}

#[test]
fn theorem_14_greater_than_loglog_across_shapes() {
    for (shape, &max_exp) in [8u32, 11, 13].iter().enumerate() {
        let rate = sweep(
            14,
            shape as u64,
            10,
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let inst = GreaterThanInstance::random(max_exp, &mut rng);
                greater_than::run(&inst, max_exp, seed)
            },
            "Thm 14",
        );
        assert!(rate >= 0.9, "Thm 14 2^{max_exp}: rate {rate}");
    }
}

#[test]
fn lower_bound_floors_grow_with_instance_size() {
    // The floors must be monotone in the parameters they charge for,
    // or the test-scale instances could not distinguish the bounds.
    let mut rng = StdRng::seed_from_u64(det_seed(15, 0, 0));
    let small = IndexingInstance::random(8, 16, &mut rng);
    let large = IndexingInstance::random(8, 64, &mut rng);
    assert!(
        hh_indexing::run(&large, 600, 1200, 1).lower_bound_units
            > hh_indexing::run(&small, 600, 1200, 1).lower_bound_units,
        "Thm 9 floor must grow with t"
    );
    let small = EpsPermInstance::random(16, 4, &mut rng);
    let large = EpsPermInstance::random(64, 4, &mut rng);
    assert!(
        borda_perm::run(&large, 2).lower_bound_units > borda_perm::run(&small, 2).lower_bound_units,
        "Thm 12 floor must grow with n"
    );
    // Theorem 13's floor charges one placed distance per encoded row
    // (γ enters through the forced ε, not the bit count), so it is the
    // row count that must drive the floor.
    let small = maximin_distance::DistanceInstance::random(16, 4, &mut rng);
    let large = maximin_distance::DistanceInstance::random(16, 32, &mut rng);
    assert!(
        maximin_distance::run(&large, 3, 3).lower_bound_units
            > maximin_distance::run(&small, 3, 3).lower_bound_units,
        "Thm 13 floor must grow with the encoded rows"
    );
}
