//! Durability suite for the write-ahead log (PR 10): `hh-wal` alone
//! and the whole `hh-server` stack on top of it are driven through the
//! `hh-faults` disk corruptors, and the contract is:
//!
//! 1. **power loss at every byte offset** of the log leaves exactly
//!    the maximal whole-record prefix: replay recovers it byte for
//!    byte, `Wal::open` truncates the torn tail and appends cleanly
//!    from the boundary — never a panic, never a half-record;
//! 2. the [`hh_faults::disk::FaultyFile`] watermark oracle agrees:
//!    torn appends survive only up to the tear, a **lying fsync**
//!    leaves nothing (which is exactly why acked durability is defined
//!    by the honored-fsync boundary), and scheduled **bit rot** is
//!    caught by the record checksum;
//! 3. **commit means durable**: under `PerBatch` and `GroupCommit` a
//!    returned `commit(seq)` implies a power cut at the durable
//!    watermark still replays every committed record (`OsBuffered`
//!    promises nothing and says so);
//! 4. **structural damage is quarantine, not crash**: any corruption
//!    of a *sealed* segment fails replay with `WalError::Structural`;
//!    at the server level that quarantines the one tenant whose log is
//!    damaged while every other tenant keeps serving;
//! 5. **retried ingest applies exactly once**: a numbered request
//!    severed at every offset of its frame — including the
//!    applied-but-unacked case — then retried under the same
//!    `(client, req_seq)` lands exactly once, byte-identical to an
//!    each-batch-once oracle;
//! 6. **compaction never drops uncovered records**: retiring sealed
//!    segments at the checkpoint cover keeps every record past the
//!    cover replayable with its payload intact.

use hh_faults::disk::FaultyFile;
use hh_server::client::Client;
use hh_server::facade::{SummaryKind, TenantSpec};
use hh_server::proto::{read_frame, write_frame, Request, Response};
use hh_server::server::{Endpoint, Server, ServerConfig};
use hh_wal::record::encode_record;
use hh_wal::segment::{encode_header, segment_file_name, SEGMENT_HEADER_LEN};
use hh_wal::{record_disk_len, replay_dir, FsyncPolicy, Wal, WalConfig, WalError};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hh-wal-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_cfg(dir: &Path, fsync: FsyncPolicy) -> WalConfig {
    WalConfig {
        dir: dir.to_path_buf(),
        segment_bytes: 1 << 20,
        fsync,
    }
}

/// Deterministic per-seq payload so replays can be checked byte for
/// byte.
fn pat(seq: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seq.wrapping_mul(31) as u8).wrapping_add(i as u8))
        .collect()
}

/// Copies every regular file of `src` into a fresh `dst`.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn truncate_file(path: &Path, len: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(len).unwrap();
}

// ---------------------------------------------------------------------------
// 1. Power loss at every byte offset.
// ---------------------------------------------------------------------------

#[test]
fn power_cut_at_every_byte_offset_recovers_the_exact_durable_prefix() {
    let base = tmp("sweep-base");
    let sizes = [1usize, 7, 64, 300, 1000, 13, 128, 2];
    {
        let (wal, replay) = Wal::open(wal_cfg(&base, FsyncPolicy::PerBatch), 1).unwrap();
        assert!(replay.records.is_empty());
        for (i, &len) in sizes.iter().enumerate() {
            let seq = wal.append(&pat(i as u64 + 1, len)).unwrap();
            assert_eq!(seq, i as u64 + 1);
        }
        wal.commit(sizes.len() as u64).unwrap();
    }
    let seg = base.join(segment_file_name(1));
    let file_len = std::fs::metadata(&seg).unwrap().len() as usize;

    // Record boundaries: offs[k] = end of the k-th record.
    let mut offs = vec![SEGMENT_HEADER_LEN];
    for &len in &sizes {
        offs.push(offs.last().unwrap() + record_disk_len(len));
    }
    assert_eq!(
        *offs.last().unwrap(),
        file_len,
        "boundary math disagrees with disk"
    );

    let scratch = tmp("sweep-cut");
    for cut in SEGMENT_HEADER_LEN..=file_len {
        let _ = std::fs::remove_dir_all(&scratch);
        copy_dir(&base, &scratch);
        truncate_file(&scratch.join(segment_file_name(1)), cut as u64);

        // The maximal whole-record prefix the cut leaves behind.
        let expect = offs.iter().filter(|&&b| b <= cut).count() - 1;
        let replay = replay_dir(&scratch).unwrap();
        assert_eq!(replay.records.len(), expect, "cut at {cut}");
        for (i, rec) in replay.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(
                rec.payload,
                pat(i as u64 + 1, sizes[i]),
                "payload torn at cut {cut}"
            );
        }

        // A live open salvages the same prefix (truncating the tail)...
        let (wal, opened) = Wal::open(wal_cfg(&scratch, FsyncPolicy::PerBatch), 1).unwrap();
        assert_eq!(opened.records.len(), expect, "open at cut {cut}");
        assert_eq!(opened.truncated_bytes as usize, cut - offs[expect]);
        drop(wal);

        // ...and at record boundaries, appending resumes seamlessly.
        if cut == offs[expect] {
            let (wal, _) = Wal::open(wal_cfg(&scratch, FsyncPolicy::PerBatch), 1).unwrap();
            let next = wal.append(&pat(99, 40)).unwrap();
            assert_eq!(next, expect as u64 + 1);
            wal.commit(next).unwrap();
            drop(wal);
            let again = replay_dir(&scratch).unwrap();
            assert_eq!(again.records.len(), expect + 1);
            assert_eq!(again.records[expect].payload, pat(99, 40));
        }
    }

    // A cut inside the segment header is not a legal torn tail.
    let _ = std::fs::remove_dir_all(&scratch);
    copy_dir(&base, &scratch);
    truncate_file(
        &scratch.join(segment_file_name(1)),
        SEGMENT_HEADER_LEN as u64 - 1,
    );
    assert!(matches!(replay_dir(&scratch), Err(WalError::Structural(_))));

    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&scratch);
}

// ---------------------------------------------------------------------------
// 2. The FaultyFile watermark oracle.
// ---------------------------------------------------------------------------

#[test]
fn torn_appends_and_lying_fsyncs_match_the_faultyfile_watermark_oracle() {
    let rec = |seq: u64, payload: &[u8]| {
        let mut buf = Vec::new();
        encode_record(seq, payload, &mut buf);
        buf
    };
    let rec1 = rec(1, &pat(1, 20));
    let rec2 = rec(2, &pat(2, 10));

    // (2a) Kill mid-append at every offset inside the second record:
    // replay keeps the first record and reports exactly the torn bytes.
    let dir = tmp("faulty-tear");
    std::fs::create_dir_all(&dir).unwrap();
    let seg = dir.join(segment_file_name(1));
    for torn in 1..rec2.len() {
        let mut durable = encode_header(1).to_vec();
        durable.extend_from_slice(&rec1);
        std::fs::write(&seg, &durable).unwrap();
        let f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
        let mut file = FaultyFile::new(f).unwrap().kill_after(torn);
        assert!(
            file.write_all(&rec2).is_err(),
            "kill at {torn} must surface"
        );
        assert_eq!(file.written(), torn);
        let replay = replay_dir(&dir).unwrap();
        assert_eq!(replay.records.len(), 1, "torn at {torn}");
        assert_eq!(replay.records[0].payload, pat(1, 20));
        assert_eq!(replay.truncated_bytes as usize, torn);
    }

    // (2b) A lying disk: the sync "succeeds", the power cut reveals
    // nothing was committed — the record the caller thought durable is
    // gone. This is the scenario that defines durability as the
    // honored-fsync boundary, not the write boundary.
    std::fs::write(&seg, encode_header(1)).unwrap();
    let f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
    let mut file = FaultyFile::new(f).unwrap().drop_syncs();
    file.write_all(&rec1).unwrap();
    file.sync().unwrap(); // lies
    assert_eq!(file.durable(), 0);
    file.power_cut().unwrap();
    let replay = replay_dir(&dir).unwrap();
    assert!(
        replay.records.is_empty(),
        "a lying fsync must not count as durable"
    );

    // (2c) Scheduled bit rot under chunked writes: the flip lands in
    // the second record; the checksum rejects it, the first record
    // survives. Once a successor segment exists the damaged segment is
    // sealed and the same flip is structural.
    std::fs::write(&seg, encode_header(1)).unwrap();
    let f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
    let mut file = FaultyFile::new(f)
        .unwrap()
        .chunk(3)
        .flip_at(rec1.len() + 8, 0x40);
    file.write_all(&rec1).unwrap();
    file.write_all(&rec2).unwrap();
    file.sync().unwrap();
    let replay = replay_dir(&dir).unwrap();
    assert_eq!(replay.records.len(), 1);
    assert_eq!(replay.truncated_bytes as usize, rec2.len());

    let mut next_seg = encode_header(3).to_vec();
    next_seg.extend_from_slice(&rec(3, b"sealer"));
    std::fs::write(dir.join(segment_file_name(3)), &next_seg).unwrap();
    assert!(
        matches!(replay_dir(&dir), Err(WalError::Structural(_))),
        "sealed-segment bit rot must be structural, not salvaged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 3. Commit means durable.
// ---------------------------------------------------------------------------

#[test]
fn commit_means_durable_under_both_acking_fsync_policies() {
    for (tag, fsync) in [
        ("perbatch", FsyncPolicy::PerBatch),
        ("group", FsyncPolicy::GroupCommit(Duration::from_millis(1))),
    ] {
        let dir = tmp(&format!("ack-{tag}"));
        let (wal, _) = Wal::open(wal_cfg(&dir, fsync), 1).unwrap();
        for seq in 1..=6u64 {
            assert_eq!(wal.append(&pat(seq, 50)).unwrap(), seq);
            wal.commit(seq).unwrap();
            assert!(
                wal.stats().durable_seq >= seq,
                "{tag}: commit({seq}) returned before durability"
            );
        }
        // Power loss now: only bytes at or before the durable watermark
        // survive. The uncommitted tail appended afterwards may tear —
        // no committed record depends on it.
        let cut = wal.durable_active_bytes();
        wal.append(&pat(7, 50)).unwrap();
        wal.append(&pat(8, 50)).unwrap();
        drop(wal);

        let scratch = tmp(&format!("ack-{tag}-cut"));
        copy_dir(&dir, &scratch);
        truncate_file(&scratch.join(segment_file_name(1)), cut);
        let replay = replay_dir(&scratch).unwrap();
        assert_eq!(
            replay.records.len(),
            6,
            "{tag}: committed records lost at the cut"
        );
        for (i, rec) in replay.records.iter().enumerate() {
            assert_eq!(rec.payload, pat(i as u64 + 1, 50));
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&scratch);
    }

    // OsBuffered promises nothing until an explicit sync — and its
    // durable watermark says exactly that.
    let dir = tmp("ack-osbuf");
    let (wal, _) = Wal::open(wal_cfg(&dir, FsyncPolicy::OsBuffered), 1).unwrap();
    wal.append(&pat(1, 50)).unwrap();
    wal.commit(1).unwrap(); // returns, but promises nothing
    assert_eq!(wal.durable_active_bytes(), SEGMENT_HEADER_LEN as u64);
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 4. Structural damage: quarantine, never a crash.
// ---------------------------------------------------------------------------

/// Builds a multi-segment log (tiny segments force rotations) and
/// returns the sorted segment file names.
fn build_multi_segment(dir: &Path, records: u64) -> Vec<PathBuf> {
    let config = WalConfig {
        dir: dir.to_path_buf(),
        segment_bytes: 256,
        fsync: FsyncPolicy::PerBatch,
    };
    let (wal, _) = Wal::open(config, 1).unwrap();
    for seq in 1..=records {
        wal.append(&pat(seq, (seq % 23) as usize + 5)).unwrap();
    }
    wal.commit(records).unwrap();
    drop(wal);
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    segs
}

#[test]
fn corruption_is_structural_in_sealed_segments_and_salvage_in_the_active_tail() {
    const RECORDS: u64 = 60;
    let base = tmp("damage-base");
    let segs = build_multi_segment(&base, RECORDS);
    assert!(
        segs.len() >= 3,
        "need several sealed segments, got {}",
        segs.len()
    );
    assert_eq!(replay_dir(&base).unwrap().records.len(), RECORDS as usize);

    let scratch = tmp("damage-cut");
    let with_copy = |mutate: &dyn Fn(&Path)| {
        let _ = std::fs::remove_dir_all(&scratch);
        copy_dir(&base, &scratch);
        mutate(&scratch);
    };

    // Active-tail damage: the last byte of the last segment is a legal
    // torn tail — replay salvages everything before it.
    with_copy(&|dir| {
        let path = dir.join(segs.last().unwrap().file_name().unwrap());
        let mut buf = std::fs::read(&path).unwrap();
        *buf.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &buf).unwrap();
    });
    let replay = replay_dir(&scratch).unwrap();
    assert_eq!(replay.records.len(), RECORDS as usize - 1);
    assert!(replay.truncated_bytes > 0);
    // And a live open over the same damage truncates and keeps going.
    let (wal, opened) = Wal::open(
        WalConfig {
            dir: scratch.clone(),
            segment_bytes: 256,
            fsync: FsyncPolicy::PerBatch,
        },
        1,
    )
    .unwrap();
    assert_eq!(opened.records.len(), RECORDS as usize - 1);
    assert_eq!(wal.append(b"after the tear").unwrap(), RECORDS);
    wal.commit(RECORDS).unwrap();
    drop(wal);

    // The same single-bit flip in a *sealed* segment is structural.
    with_copy(&|dir| {
        let path = dir.join(segs[0].file_name().unwrap());
        let mut buf = std::fs::read(&path).unwrap();
        buf[SEGMENT_HEADER_LEN + 7] ^= 0x20;
        std::fs::write(&path, &buf).unwrap();
    });
    assert!(matches!(replay_dir(&scratch), Err(WalError::Structural(_))));

    // A missing middle segment breaks sequence continuity: structural.
    with_copy(&|dir| {
        std::fs::remove_file(dir.join(segs[1].file_name().unwrap())).unwrap();
    });
    assert!(matches!(replay_dir(&scratch), Err(WalError::Structural(_))));

    // Deterministic corruption fuzz: single-bit flips sampled across
    // the whole log either salvage a prefix or fail structurally —
    // never panic, never invent records.
    let mut rng = 0x5EED_1DEAu64;
    for _ in 0..64 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        with_copy(&|dir| {
            let files: Vec<PathBuf> = segs
                .iter()
                .map(|s| dir.join(s.file_name().unwrap()))
                .collect();
            let total: usize = files
                .iter()
                .map(|f| std::fs::metadata(f).unwrap().len() as usize)
                .sum();
            let mut off = (rng >> 16) as usize % total;
            for f in &files {
                let len = std::fs::metadata(f).unwrap().len() as usize;
                if off < len {
                    let mut buf = std::fs::read(f).unwrap();
                    buf[off] ^= 1 << (rng % 8);
                    std::fs::write(f, &buf).unwrap();
                    break;
                }
                off -= len;
            }
        });
        match replay_dir(&scratch) {
            Ok(replay) => assert!(replay.records.len() <= RECORDS as usize),
            Err(WalError::Structural(_)) => {}
            Err(other) => panic!("fuzz flip produced a non-structural failure: {other}"),
        }
    }

    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&scratch);
}

fn server_spec() -> TenantSpec {
    TenantSpec {
        kind: SummaryKind::SpaceSaving,
        shards: 1,
        m: 100_000,
        universe: 1 << 20,
        ..TenantSpec::default()
    }
}

#[test]
fn corrupt_sealed_wal_quarantines_one_tenant_while_the_rest_serve() {
    let root = tmp("server-quarantine");
    // No periodic checkpoints: checkpoints advance the cover and would
    // let compaction retire the sealed segment this test corrupts.
    let mut config = ServerConfig::fast(&root);
    config.checkpoint_every = Duration::from_secs(3_600);
    let server = Server::start(
        config.clone(),
        Endpoint::Tcp("127.0.0.1:0".parse().unwrap()),
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    client.create("bad", server_spec()).unwrap();
    client.create("good", server_spec()).unwrap();

    let mut oracle = server_spec().build_bank().unwrap().remove(0);
    // Enough volume into "bad" to seal at least one 64 KiB segment.
    for i in 0..20u64 {
        let items: Vec<u64> = (0..500).map(|k| i * 131 + k % 17).collect();
        assert_eq!(client.ingest("bad", 0, &items).unwrap(), 500);
    }
    for i in 0..3u64 {
        let items: Vec<u64> = (0..400).map(|k| 7_000 + i * 131 + k % 11).collect();
        assert_eq!(client.ingest("good", 0, &items).unwrap(), 400);
        use hh_core::StreamSummary as _;
        oracle.insert_batch(&items);
    }
    server.kill();

    // Flip one byte inside a record of bad's oldest (sealed) segment.
    let wal_dir = root.join("bad").join("wal");
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&wal_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    assert!(segs.len() >= 2, "ingest volume did not seal a segment");
    let mut buf = std::fs::read(&segs[0]).unwrap();
    buf[SEGMENT_HEADER_LEN + 40] ^= 0x10;
    std::fs::write(&segs[0], &buf).unwrap();

    let server = Server::start(config, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();

    // The damaged tenant is quarantined, not fatal: the daemon is up,
    // refuses writes to "bad", and serves "good" with every acked batch
    // replayed from its (intact) log.
    let health = client.health().unwrap();
    assert!(
        health.quarantined.contains(&"bad".to_string()),
        "damaged log must quarantine its tenant: {:?}",
        health.quarantined
    );
    assert!(client.ingest("bad", 0, &[1, 2, 3]).is_err());
    use hh_core::MergeableSummary as _;
    let served = client.snapshot("good").unwrap();
    assert_eq!(
        served,
        oracle.to_bytes().as_ref(),
        "healthy tenant lost acked data to a neighbor's corruption"
    );
    assert_eq!(client.ingest("good", 0, &[9, 9, 9]).unwrap(), 3);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// 5. Retried ingest applies exactly once.
// ---------------------------------------------------------------------------

#[test]
fn retried_ingest_applies_exactly_once_at_every_sever_offset() {
    let root = tmp("dedup-exact");
    let mut config = ServerConfig::fast(&root);
    config.checkpoint_every = Duration::from_secs(3_600);
    let server = Server::start(config, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
    let addr = server.local_addr().unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();
    client.create("exact", server_spec()).unwrap();

    // Few distinct items + huge m: SpaceSaving is exact, so one double
    // apply or one lost batch shifts the snapshot bytes.
    const CLIENT: u64 = 0xC0FFEE;
    let items: Vec<u64> = (0..40).map(|k| k % 4).collect();
    let body_for = |req_seq: u64| {
        Request::Ingest {
            tenant: "exact".to_string(),
            shard: 0,
            client: CLIENT,
            req_seq,
            items: items.clone(),
        }
        .encode()
    };
    let frame_for = |body: &[u8]| {
        let mut full = (body.len() as u32).to_le_bytes().to_vec();
        full.extend_from_slice(body);
        full
    };

    let mut good = TcpStream::connect(addr).unwrap();
    good.set_nodelay(true).unwrap();
    good.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut rpc = |body: &[u8]| -> Response {
        write_frame(&mut good, body).unwrap();
        let rsp = read_frame(&mut good)
            .unwrap()
            .expect("server closed the retry conn");
        Response::decode(&rsp).unwrap()
    };

    let mut oracle = server_spec().build_bank().unwrap().remove(0);
    let reference_len = frame_for(&body_for(1)).len();

    // (5a) Sever the numbered frame at every offset — the server never
    // sees a complete request, so nothing is applied — then retry the
    // same (client, req_seq) whole. Exactly one application each.
    for cut in 1..reference_len {
        let req_seq = cut as u64;
        let body = body_for(req_seq);
        let full = frame_for(&body);
        let sever = cut.min(full.len() - 1);
        let mut doomed = TcpStream::connect(addr).unwrap();
        let _ = doomed.write_all(&full[..sever]);
        drop(doomed);

        match rpc(&body) {
            Response::Ingested { accepted } => assert_eq!(accepted, 40, "sever at {cut}"),
            other => panic!("retry after sever at {cut} answered {other:?}"),
        }
        use hh_core::StreamSummary as _;
        oracle.insert_batch(&items);
    }

    // (5b) Applied but unacked: the full frame lands, the connection
    // dies before the ack is read. The retry must dedup — answered from
    // the table with the original accepted count, not re-applied.
    for k in 0..5u64 {
        let req_seq = 1_000_000 + k;
        let body = body_for(req_seq);
        let full = frame_for(&body);
        let mut drive = TcpStream::connect(addr).unwrap();
        drive.write_all(&full).unwrap();
        drop(drive); // ack rides into a closed socket

        match rpc(&body) {
            Response::Ingested { accepted } => assert_eq!(accepted, 40, "unacked retry {k}"),
            other => panic!("unacked retry {k} answered {other:?}"),
        }
        use hh_core::StreamSummary as _;
        oracle.insert_batch(&items);
    }

    use hh_core::MergeableSummary as _;
    let served = client.snapshot("exact").unwrap();
    assert_eq!(
        served,
        oracle.to_bytes().as_ref(),
        "retries lost or double-applied a batch"
    );
    assert!(
        client.health().unwrap().dedup_hits >= 5,
        "applied-but-unacked retries must be served from the dedup table"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// 6. Compaction never drops uncovered records.
// ---------------------------------------------------------------------------

#[test]
fn compaction_never_drops_records_past_the_checkpoint_cover() {
    const RECORDS: u64 = 100;
    const COVERED: u64 = 37;
    let dir = tmp("compact");
    let config = WalConfig {
        dir: dir.clone(),
        segment_bytes: 256,
        fsync: FsyncPolicy::PerBatch,
    };
    let (wal, _) = Wal::open(config.clone(), 1).unwrap();
    for seq in 1..=RECORDS {
        wal.append(&pat(seq, (seq % 23) as usize + 5)).unwrap();
    }
    wal.commit(RECORDS).unwrap();
    let before = wal.stats().segments;
    assert!(
        before >= 4,
        "tiny segments should have rotated, got {before}"
    );

    // Nothing covered, nothing retired.
    assert_eq!(wal.compact(0).unwrap(), 0);

    // Cover a prefix: only segments that lie entirely at or below the
    // cover may go; the one straddling it must survive whole.
    let removed = wal.compact(COVERED).unwrap();
    assert!(
        removed >= 1,
        "a covered prefix across rotations must retire segments"
    );
    assert_eq!(wal.stats().compacted_segments, removed);
    drop(wal);

    let replay = replay_dir(&dir).unwrap();
    let first = replay.records.first().map(|r| r.seq).unwrap();
    assert!(
        first <= COVERED + 1,
        "compaction dropped uncovered seq {} (cover was {COVERED})",
        first
    );
    let mut expect = first;
    for rec in &replay.records {
        assert_eq!(rec.seq, expect, "replay gap after compaction");
        assert_eq!(
            rec.payload,
            pat(rec.seq, (rec.seq % 23) as usize + 5),
            "payload of seq {} damaged by compaction",
            rec.seq
        );
        expect += 1;
    }
    assert_eq!(expect - 1, RECORDS, "records past the cover went missing");

    // The compacted log is still a valid log: it opens and appends.
    let (wal, opened) = Wal::open(config, 1).unwrap();
    assert_eq!(opened.records.len(), replay.records.len());
    assert_eq!(wal.append(b"life goes on").unwrap(), RECORDS + 1);
    wal.commit(RECORDS + 1).unwrap();
    drop(wal);

    let _ = std::fs::remove_dir_all(&dir);
}
