//! Fault-injection suite for the snapshot codec (PR 7): every
//! [`MergeableSummary`] in the workspace is driven through the
//! `hh-faults` byte-level corruptors, and the contract is the same for
//! all nine —
//!
//! 1. **truncation at every offset** returns a structured `Err`, never
//!    a panic, for both the current (checksummed) and legacy
//!    (checksum-less) wire formats;
//! 2. **single-bit flips** of a current-format buffer are *always*
//!    rejected (the trailing FNV-1a digest covers every body bit; tag
//!    bits fail the tag match instead), and flips of a legacy buffer
//!    never panic the decoder whatever they hit;
//! 3. **inflated length prefixes** — a buffer rewritten to claim more
//!    payload than it carries — are rejected without the decoder
//!    allocating from the lie, even when the adversary *forges a valid
//!    checksum* over the corrupted bytes, so the bound comes from the
//!    decode layer itself rather than the digest;
//! 4. **tag swaps** between summary types answer `WrongTag`;
//! 5. a clean buffer **round-trips bit-identically**, and its restore
//!    report says the checksum was verified.

use hh_baselines::{CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving};
use hh_core::{
    HhParams, MergeableSummary, MisraGries, OptimalListHh, SimpleListHh, SnapshotError,
    StreamSummary,
};
use hh_faults::corrupt;
use hh_integration::planted;

// Kept modest on purpose: the truncation sweep decodes the buffer once
// per byte offset, so suite time grows quadratically with snapshot
// size. 5k items still populates every table, sampler, and RNG state.
const M: u64 = 5_000;
const EPS: f64 = 0.05;
const PHI: f64 = 0.15;

/// The workload every summary ingests before being snapshotted: two
/// genuine heavies over a light tail, enough stream to populate every
/// table, sampler, and RNG state.
fn workload(seed: u64) -> Vec<u64> {
    planted(M, &[(7, 0.30), (8, PHI + 0.02)], seed)
}

/// Re-stamps the trailing FNV-1a digest of `buf` so it matches the
/// (corrupted) bytes before it — the forging adversary that strips the
/// checksum of its protective value and leaves the decoder's own
/// bounds as the only line of defense.
fn forge_checksum(buf: &mut [u8]) {
    let body_len = buf.len() - 8;
    let digest = hh_space::fnv1a64x4(&buf[..body_len]);
    buf[body_len..].copy_from_slice(&digest.to_le_bytes());
}

/// The full assault on one summary type: every corruption class from
/// the module docs, over both wire formats.
fn assault<S: MergeableSummary>(summary: &S, tag: &str, legacy_tag: &str, foreign_tag: &str) {
    let buf = summary.to_bytes();

    // (5) Clean round-trip: bit-identical bytes, verified checksum.
    let (restored, report) = S::from_bytes_report(&buf).expect("clean buffer restores");
    assert!(report.checksum_verified, "{tag}: checksum must verify");
    assert!(!report.legacy_format, "{tag}: current format");
    assert_eq!(
        restored.to_bytes(),
        buf,
        "{tag}: restore → snapshot must be bit-identical"
    );

    // A legacy twin: same payload behind the previous tag, no trailer
    // (the v(N−1) payload layout is unchanged; only tag and checksum
    // were added).
    let legacy = {
        let swapped = corrupt::swap_tag(&buf, tag, legacy_tag).expect("buffer starts with its tag");
        swapped[..swapped.len() - 8].to_vec()
    };
    let (from_legacy, report) = S::from_bytes_report(&legacy).expect("legacy buffer restores");
    assert!(!report.checksum_verified, "{legacy_tag}: no checksum");
    assert!(report.legacy_format, "{legacy_tag}: legacy format");
    assert_eq!(
        from_legacy.to_bytes(),
        buf,
        "{legacy_tag}: legacy restore re-snapshots to the current format"
    );

    // (1) Truncation at every offset, both formats: structured Err.
    for t in corrupt::truncations(&buf) {
        assert!(
            S::from_bytes(t).is_err(),
            "{tag}: truncation to {} bytes must fail",
            t.len()
        );
    }
    for t in corrupt::truncations(&legacy) {
        assert!(
            S::from_bytes(t).is_err(),
            "{legacy_tag}: truncation to {} bytes must fail",
            t.len()
        );
    }

    // (2) Bit flips: the current format rejects every one (digest or
    // tag); the legacy format must merely never panic.
    for bad in corrupt::bit_flips(&buf, 0xF1A5, 200) {
        assert!(
            S::from_bytes(&bad).is_err(),
            "{tag}: checksummed buffer must reject any bit flip"
        );
    }
    for bad in corrupt::bit_flips(&legacy, 0xF1A6, 200) {
        let _ = S::from_bytes(&bad); // Ok or Err — panics fail the test
    }

    // (3) Inflated length prefixes. Unforged: the digest no longer
    // matches, so rejection is guaranteed. Forged: the decoder's own
    // length bounds must reject the lie — each prefix now claims more
    // bytes than the whole buffer holds, so an `Ok` would mean a
    // decoder trusted (and allocated from) an impossible length.
    for bad in corrupt::inflate_length_prefixes(&buf) {
        assert!(
            S::from_bytes(&bad).is_err(),
            "{tag}: inflated prefix must fail the checksum"
        );
    }
    for mut bad in corrupt::inflate_length_prefixes(&buf) {
        forge_checksum(&mut bad);
        let _ = S::from_bytes(&bad); // must not panic nor over-allocate
    }
    for bad in corrupt::inflate_length_prefixes(&legacy) {
        let _ = S::from_bytes(&bad); // checksum-less: bounds only
    }

    // (4) Tag swap: impersonating another type answers WrongTag.
    let foreign = corrupt::swap_tag(&buf, tag, foreign_tag).expect("tag present");
    assert!(
        matches!(
            S::from_bytes(&foreign),
            Err(SnapshotError::WrongTag { .. }) | Err(SnapshotError::ChecksumMismatch)
        ),
        "{tag}: foreign tag must be refused"
    );
}

/// The dyadic variant of the assault: `hh.dyadic.v1` is a first-format
/// tag (no legacy twin exists), so the checksum-less lanes drop out and
/// every corruption class must be rejected outright.
fn assault_first_format<S: MergeableSummary>(summary: &S, tag: &str, foreign_tag: &str) {
    let buf = summary.to_bytes();

    let (restored, report) = S::from_bytes_report(&buf).expect("clean buffer restores");
    assert!(report.checksum_verified, "{tag}: checksum must verify");
    assert!(!report.legacy_format, "{tag}: current format");
    assert_eq!(
        restored.to_bytes(),
        buf,
        "{tag}: restore → snapshot must be bit-identical"
    );

    for t in corrupt::truncations(&buf) {
        assert!(
            S::from_bytes(t).is_err(),
            "{tag}: truncation to {} bytes must fail",
            t.len()
        );
    }

    for bad in corrupt::bit_flips(&buf, 0xF1A7, 200) {
        assert!(
            S::from_bytes(&bad).is_err(),
            "{tag}: checksummed buffer must reject any bit flip"
        );
    }

    for bad in corrupt::inflate_length_prefixes(&buf) {
        assert!(
            S::from_bytes(&bad).is_err(),
            "{tag}: inflated prefix must fail the checksum"
        );
    }
    for mut bad in corrupt::inflate_length_prefixes(&buf) {
        forge_checksum(&mut bad);
        let _ = S::from_bytes(&bad); // must not panic nor over-allocate
    }

    let foreign = corrupt::swap_tag(&buf, tag, foreign_tag).expect("tag present");
    assert!(
        matches!(
            S::from_bytes(&foreign),
            Err(SnapshotError::WrongTag { .. }) | Err(SnapshotError::ChecksumMismatch)
        ),
        "{tag}: foreign tag must be refused"
    );
}

#[test]
fn algo1_snapshot_survives_the_assault() {
    let params = HhParams::new(EPS, PHI).unwrap();
    let mut s = SimpleListHh::new(params, 1 << 40, M, 11).unwrap();
    s.insert_batch(&workload(1));
    assault(&s, "hh.algo1.v3", "hh.algo1.v2", "hh.algo2.v3");
}

#[test]
fn algo2_snapshot_survives_the_assault() {
    // Algorithm 2's snapshot is dominated by its level structures, not
    // the stream: coarser (ε, φ) keep the buffer ~20 KB so the
    // every-offset truncation sweep stays affordable.
    let params = HhParams::new(0.2, 0.3).unwrap();
    let mut s = OptimalListHh::new(params, 1 << 40, 2_000, 12).unwrap();
    s.insert_batch(&planted(2_000, &[(7, 0.40), (8, 0.32)], 2));
    assault(&s, "hh.algo2.v3", "hh.algo2.v2", "hh.algo1.v3");
}

#[test]
fn misra_gries_snapshot_survives_the_assault() {
    let mut s = MisraGries::new(64, 40);
    s.insert_batch(&workload(3));
    assault(&s, "hh.misra-gries.v3", "hh.misra-gries.v2", "hh.algo1.v3");
}

#[test]
fn count_min_snapshot_survives_the_assault() {
    let mut s = CountMin::new(EPS, PHI, 0.05, 1 << 40, 14);
    s.insert_batch(&workload(4));
    assault(
        &s,
        "hh.baseline.count-min.v2",
        "hh.baseline.count-min.v1",
        "hh.baseline.count-sketch.v2",
    );
}

#[test]
fn count_sketch_snapshot_survives_the_assault() {
    let mut s = CountSketch::new(0.1, PHI, 0.1, 1 << 40, 15);
    s.insert_batch(&workload(5));
    assault(
        &s,
        "hh.baseline.count-sketch.v2",
        "hh.baseline.count-sketch.v1",
        "hh.baseline.count-min.v2",
    );
}

#[test]
fn lossy_counting_snapshot_survives_the_assault() {
    let mut s = LossyCounting::new(EPS, PHI, 1 << 40);
    s.insert_batch(&workload(6));
    assault(
        &s,
        "hh.baseline.lossy-counting.v2",
        "hh.baseline.lossy-counting.v1",
        "hh.baseline.space-saving.v3",
    );
}

#[test]
fn misra_gries_baseline_snapshot_survives_the_assault() {
    let mut s = MisraGriesBaseline::new(EPS, PHI, 1 << 40);
    s.insert_batch(&workload(7));
    assault(
        &s,
        "hh.baseline.misra-gries.v3",
        "hh.baseline.misra-gries.v2",
        "hh.misra-gries.v3",
    );
}

#[test]
fn space_saving_snapshot_survives_the_assault() {
    let mut s = SpaceSaving::new(EPS, PHI, 1 << 40);
    s.insert_batch(&workload(8));
    assault(
        &s,
        "hh.baseline.space-saving.v3",
        "hh.baseline.space-saving.v2",
        "hh.baseline.lossy-counting.v2",
    );
}

#[test]
fn dyadic_bank_snapshot_survives_the_assault() {
    // Two banks through the first-format assault. Coarse parameters
    // and a small key space keep the buffers in the tens of kilobytes
    // (the truncation sweep is quadratic in snapshot size): a Count-Min
    // bank over 4 levels, and a Misra–Gries bank through the generic
    // level builder — the corruption contract is per-wire-image, so
    // any inner type must behave identically.
    let mut cm = hh_dyadic::DyadicHh::count_min(0.3, 0.4, 0.2, 1 << 4, 31).unwrap();
    cm.insert_batch(&workload(9).iter().map(|x| x & 0xF).collect::<Vec<_>>());
    assault_first_format(&cm, "hh.dyadic.v1", "hh.algo1.v3");

    let mut mg = hh_dyadic::DyadicHh::with_level_builder(0.2, 0.3, 1 << 8, |_, u_k| {
        Ok(MisraGriesBaseline::new(0.2, 0.3, u_k))
    })
    .unwrap();
    mg.insert_batch(&workload(10).iter().map(|x| x & 0xFF).collect::<Vec<_>>());
    assault_first_format(&mg, "hh.dyadic.v1", "hh.baseline.count-min.v2");
}

/// Structurally incompatible summaries smuggled through snapshots must
/// still refuse to merge: restore validates shape, `merge_from`
/// validates compatibility, and neither trusts the other to have done
/// its half.
#[test]
fn restored_snapshots_still_refuse_incompatible_merges() {
    let params = HhParams::new(EPS, PHI).unwrap();

    // Different structure seeds ⇒ different hash draws ⇒ Err.
    let mut a = SimpleListHh::with_seeds(params, 1 << 40, M, 1, 10).unwrap();
    let b = SimpleListHh::with_seeds(params, 1 << 40, M, 2, 10).unwrap();
    let b = SimpleListHh::from_bytes(&b.to_bytes()).unwrap();
    assert!(a.merge_from(&b).is_err(), "mismatched structure seeds");

    // Different candidate capacities in CountSketch ⇒ Err. No public
    // constructor varies the cap independently of φ, so smuggle one
    // through a crafted *legacy* (checksum-less) snapshot: locate the
    // `[candidates = 0][candidate_cap]` run in the wire image and bump
    // the cap. The restored sketch is structurally identical except
    // for the cap, and the merge must still catch it.
    let mut d = CountSketch::with_dimensions(64, 3, PHI, 1 << 40, 5);
    let buf = d.to_bytes();
    let legacy = corrupt::swap_tag(
        &buf,
        "hh.baseline.count-sketch.v2",
        "hh.baseline.count-sketch.v1",
    )
    .unwrap();
    let mut legacy = legacy[..legacy.len() - 8].to_vec();
    let cap = ((8.0 / PHI).ceil() as u64).max(8);
    let mut needle = 0u64.to_le_bytes().to_vec();
    needle.extend_from_slice(&cap.to_le_bytes());
    let at = legacy
        .windows(16)
        .rposition(|w| w == needle.as_slice())
        .expect("empty-candidates + cap run is unique near the buffer tail");
    legacy[at + 8..at + 16].copy_from_slice(&(cap + 1).to_le_bytes());
    let smuggled = CountSketch::from_bytes(&legacy).expect("crafted cap is in range");
    let err = d.merge_from(&smuggled).unwrap_err();
    assert!(
        err.to_string().contains("candidate"),
        "mismatched candidate capacities must be refused, got: {err}"
    );

    // Different widths in Space-Saving ⇒ Err.
    let e = SpaceSaving::new(EPS / 2.0, PHI, 1 << 40);
    let mut f = SpaceSaving::new(EPS, PHI, 1 << 40);
    let e = SpaceSaving::from_bytes(&e.to_bytes()).unwrap();
    assert!(f.merge_from(&e).is_err(), "mismatched capacities");
}
