//! Cross-crate voting-stream integration: streaming Borda/maximin vs the
//! exact election oracle under three vote models, plus the adapters and
//! the unknown-length variant.

use hh_space::SpaceUsage;
use hh_votes::{
    Election, MallowsModel, PlackettLuce, PluralityAdapter, Ranking, StreamingBorda,
    StreamingMaximin, UnknownBorda, VetoAdapter, VoteSummary,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mallows(n: usize, m: usize, dispersion: f64, seed: u64) -> Vec<Ranking> {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = MallowsModel::new(Ranking::identity(n), dispersion);
    (0..m).map(|_| model.sample(&mut rng)).collect()
}

fn plackett(n: usize, m: usize, seed: u64) -> Vec<Ranking> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n).map(|c| 1.0 + (n - c) as f64).collect();
    let model = PlackettLuce::new(weights);
    (0..m).map(|_| model.sample(&mut rng)).collect()
}

fn impartial(n: usize, m: usize, seed: u64) -> Vec<Ranking> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m).map(|_| Ranking::random(n, &mut rng)).collect()
}

#[test]
fn borda_scores_accurate_under_three_vote_models() {
    let n = 9usize;
    let m = 25_000usize;
    let eps = 0.05;
    for (name, votes) in [
        ("mallows", mallows(n, m, 0.7, 1)),
        ("plackett-luce", plackett(n, m, 2)),
        ("impartial", impartial(n, m, 3)),
    ] {
        let exact = Election::from_votes(n, &votes);
        let mut sb = StreamingBorda::new(n, eps, 0.5, 0.1, m as u64, 4).unwrap();
        sb.insert_votes(&votes);
        let est = sb.score_estimates();
        for (c, &e) in est.iter().enumerate() {
            let truth = exact.borda_scores()[c] as f64;
            assert!(
                (e - truth).abs() <= eps * (m * n) as f64,
                "{name} candidate {c}: est {e} truth {truth}"
            );
        }
    }
}

#[test]
fn maximin_scores_accurate_under_three_vote_models() {
    let n = 6usize;
    let m = 20_000usize;
    let eps = 0.1;
    for (name, votes) in [
        ("mallows", mallows(n, m, 0.8, 5)),
        ("plackett-luce", plackett(n, m, 6)),
        ("impartial", impartial(n, m, 7)),
    ] {
        let exact = Election::from_votes(n, &votes);
        let mut sm = StreamingMaximin::new(n, eps, 0.5, 0.1, m as u64, 8).unwrap();
        sm.insert_votes(&votes);
        let est = sm.score_estimates();
        let truth = exact.maximin_scores();
        for c in 0..n {
            assert!(
                (est[c] - truth[c] as f64).abs() <= eps * m as f64,
                "{name} candidate {c}: est {} truth {}",
                est[c],
                truth[c]
            );
        }
    }
}

#[test]
fn all_four_rules_agree_with_exact_on_concentrated_votes() {
    // Tight Mallows: candidate 0 wins under every rule, streaming and
    // exact alike.
    let n = 7usize;
    let m = 30_000usize;
    let votes = mallows(n, m, 0.45, 9);
    let exact = Election::from_votes(n, &votes);
    assert_eq!(exact.borda_winner(), Some(0));
    assert_eq!(exact.condorcet_winner(), Some(0));

    let mut sb = StreamingBorda::new(n, 0.05, 0.5, 0.1, m as u64, 10).unwrap();
    let mut sm = StreamingMaximin::new(n, 0.1, 0.5, 0.1, m as u64, 11).unwrap();
    let mut pa = PluralityAdapter::new(n, 0.05, 0.1, m as u64, 12).unwrap();
    let mut va = VetoAdapter::new(n, 0.05, 0.2, m as u64, 13).unwrap();
    for v in &votes {
        sb.insert_vote(v);
        sm.insert_vote(v);
        pa.insert_vote(v);
        va.insert_vote(v);
    }
    assert_eq!(sb.winner().unwrap().item, 0, "borda");
    assert_eq!(sm.winner().unwrap().item, 0, "maximin");
    assert_eq!(pa.winner().unwrap().item, 0, "plurality");
    // Veto winner: fewest last places — also the consensus top candidate.
    let veto_item = va.winner().item;
    let min_last = exact.veto_scores().iter().min().copied().unwrap();
    assert!(
        exact.veto_scores()[veto_item as usize] as f64 <= min_last as f64 + 0.05 * m as f64,
        "veto winner {veto_item} too disliked"
    );
}

#[test]
fn unknown_length_borda_matches_known_length() {
    let n = 6usize;
    let m = 40_000usize;
    let votes = mallows(n, m, 0.6, 20);
    let exact = Election::from_votes(n, &votes);
    let mut ub = UnknownBorda::new(n, 0.1, 0.5, 0.1, 21).unwrap();
    ub.insert_votes(&votes);
    assert_eq!(
        ub.winner().unwrap().item,
        exact.borda_winner().unwrap() as u64
    );
}

#[test]
fn streaming_summaries_are_far_smaller_than_vote_storage() {
    let n = 10usize;
    let m = 50_000usize;
    let votes = mallows(n, m, 0.9, 30);
    let mut sb = StreamingBorda::new(n, 0.1, 0.5, 0.1, m as u64, 31).unwrap();
    sb.insert_votes(&votes);
    // Exact storage: m votes × n⌈log n⌉ bits.
    let exact_bits = (m * n * 4) as u64;
    assert!(
        sb.model_bits() * 100 < exact_bits,
        "borda summary {} should be <1% of exact {exact_bits}",
        sb.model_bits()
    );
}

#[test]
fn borda_conservation_survives_streaming() {
    // Σ estimated scores ≈ s·n(n−1)/2 / p — the streaming analogue of the
    // conservation law, exact over the sampled sub-election.
    let n = 8usize;
    let m = 30_000usize;
    let votes = impartial(n, m, 40);
    let mut sb = StreamingBorda::new(n, 0.1, 0.5, 0.1, m as u64, 41).unwrap();
    sb.insert_votes(&votes);
    let total: f64 = sb.score_estimates().iter().sum();
    let expected = sb.samples() as f64 * (n * (n - 1) / 2) as f64 / sb.sampling_probability();
    assert!(
        (total - expected).abs() < 1e-6 * expected.max(1.0),
        "conservation: {total} vs {expected}"
    );
}
