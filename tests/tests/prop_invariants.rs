//! Property-based cross-crate invariants (proptest): the structural
//! guarantees that must hold on *arbitrary* streams, not just the
//! designed workloads.

use hh_baselines::{LossyCounting, MisraGriesBaseline, SpaceSaving};
use hh_core::{FrequencyEstimator, MisraGries, StreamSummary};
use hh_space::{GammaVec, VarCounterArray};
use hh_votes::Ranking;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

fn truth(stream: &[u64]) -> HashMap<u64, u64> {
    let mut t = HashMap::new();
    for &x in stream {
        *t.entry(x).or_insert(0) += 1;
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn misra_gries_error_invariant(
        stream in vec(0u64..50, 1..2000),
        capacity in 1usize..20,
    ) {
        let mut mg = MisraGries::new(capacity, 8);
        mg.insert_all(&stream);
        let bound = stream.len() as u64 / (capacity as u64 + 1);
        for (&item, &f) in &truth(&stream) {
            let est = mg.estimate(item);
            prop_assert!(est <= f, "overestimate: item {item}");
            prop_assert!(est + bound >= f, "undercount beyond s/(k+1)");
        }
        prop_assert!(mg.len() <= capacity);
    }

    #[test]
    fn space_saving_sandwich_invariant(
        stream in vec(0u64..60, 1..2000),
        capacity in 1usize..16,
    ) {
        let mut ss = SpaceSaving::with_capacity(capacity, 0.5, 64);
        ss.insert_all(&stream);
        let t = truth(&stream);
        for (item, count, err) in ss.entries() {
            let f = t.get(&item).copied().unwrap_or(0);
            prop_assert!(count >= f, "space-saving must not undercount");
            prop_assert!(count - err <= f, "count-err must lower-bound f");
        }
        // Minimum monitored count is at most m/k.
        prop_assert!(ss.min_count() <= stream.len() as u64 / capacity as u64 + 1);
    }

    #[test]
    fn lossy_counting_undercount_invariant(
        stream in vec(0u64..40, 1..1500),
    ) {
        let eps = 0.1;
        let mut lc = LossyCounting::new(eps, 0.5, 64);
        lc.insert_all(&stream);
        let budget = eps * stream.len() as f64;
        for (&item, &f) in &truth(&stream) {
            let est = lc.estimate(item);
            prop_assert!(est <= f as f64);
            prop_assert!(est + budget >= f as f64);
        }
    }

    #[test]
    fn gamma_roundtrip_arbitrary_values(values in vec(0u64..u64::MAX - 1, 0..200)) {
        let gv: GammaVec = values.iter().copied().collect();
        prop_assert_eq!(gv.decode_all(), values);
    }

    #[test]
    fn varcounter_accounting_matches_recompute(
        ops in vec((0usize..16, 0u64..1000), 0..500),
    ) {
        let mut a = VarCounterArray::new(16);
        for &(i, delta) in &ops {
            a.add(i, delta);
        }
        let recomputed: u64 = a.iter().map(hh_space::gamma_bits).sum();
        prop_assert_eq!(hh_space::SpaceUsage::model_bits(&a), recomputed);
        prop_assert_eq!(a.to_gamma().bit_len() as u64, recomputed);
    }

    #[test]
    fn merged_mg_equals_error_contract(
        left in vec(0u64..30, 1..800),
        right in vec(0u64..30, 1..800),
    ) {
        let mut a = MisraGriesBaseline::new(0.2, 0.5, 64);
        let mut b = MisraGriesBaseline::new(0.2, 0.5, 64);
        a.insert_all(&left);
        b.insert_all(&right);
        use hh_baselines::Mergeable;
        a.merge_from(&b).unwrap();
        let m = (left.len() + right.len()) as u64;
        let k = a.capacity() as u64;
        let combined: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        for (&item, &f) in &truth(&combined) {
            let est = a.estimate(item);
            prop_assert!(est <= f as f64);
            prop_assert!(est + (m / (k + 1)) as f64 + 1.0 >= f as f64, "item {item}");
        }
    }

    #[test]
    fn rankings_stay_permutations_under_ops(n in 1usize..30, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = Ranking::random(n, &mut rng);
        // Positions invert the order.
        let pos = r.positions();
        for p in 0..n {
            prop_assert_eq!(pos[r.at(p) as usize] as usize, p);
        }
        // Borda contributions are a permutation of 0..n.
        let mut contrib: Vec<u64> = (0..n as u32).map(|c| r.borda_contribution(c)).collect();
        contrib.sort_unstable();
        prop_assert_eq!(contrib, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn bitvec_push_bits_roundtrip(values in vec((0u64..u64::MAX, 1u32..64), 0..50)) {
        let mut bv = hh_space::BitVec::new();
        for &(v, w) in &values {
            bv.push_bits(v & ((1u64 << w) - 1), w);
        }
        let mut pos = 0usize;
        for &(v, w) in &values {
            prop_assert_eq!(bv.get_bits(pos, w), v & ((1u64 << w) - 1));
            pos += w as usize;
        }
    }
}
