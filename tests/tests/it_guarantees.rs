//! End-to-end Definition-1 guarantees across algorithms, workloads,
//! orders and seeds — the executable statement of the paper's main
//! theorem suite.

use hh_baselines::{
    CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SampleAndHold, SpaceSaving,
    StickySampling,
};
use hh_core::{
    EpsMaximum, EpsMinimum, HeavyHitters, HhParams, OptimalListHh, Report, SimpleListHh,
    StreamSummary,
};
use hh_integration::{failures, planted};
use hh_streams::{arrange, ExactCounts, OrderPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 0.05;
const PHI: f64 = 0.2;
const M: u64 = 250_000;
const N: u64 = 1 << 40;
/// Must-report at 30% and 22%; forbidden at exactly (φ−ε)m = 15%.
const HEAVY: [(u64, f64); 3] = [(1, 0.30), (2, 0.22), (3, 0.15)];

fn satisfies_definition_one(report: &Report, oracle: &ExactCounts) -> bool {
    let recall = report.contains(1) && report.contains(2);
    let no_fp = !report.contains(3);
    let errs_ok = report
        .entries()
        .iter()
        .all(|e| (e.count - oracle.freq(e.item) as f64).abs() <= EPS * M as f64);
    recall && no_fp && errs_ok
}

fn check_failure_budget<F>(name: &str, trials: u64, budget: u64, mut run: F)
where
    F: FnMut(&[u64], u64) -> Report,
{
    let bad = failures(trials, |seed| {
        let stream = planted(M, &HEAVY, 0x600D + seed);
        let oracle = ExactCounts::from_stream(&stream);
        satisfies_definition_one(&run(&stream, seed), &oracle)
    });
    assert!(
        bad <= budget,
        "{name}: {bad}/{trials} trials violated Definition 1 (budget {budget})"
    );
}

#[test]
fn algo1_meets_definition_one_across_seeds() {
    let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
    check_failure_budget("algo1", 12, 1, |stream, seed| {
        let mut a = SimpleListHh::new(params, N, M, seed).unwrap();
        a.insert_all(stream);
        a.report()
    });
}

#[test]
fn algo2_meets_definition_one_across_seeds() {
    let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
    check_failure_budget("algo2", 12, 1, |stream, seed| {
        let mut a = OptimalListHh::new(params, N, M, seed).unwrap();
        a.insert_all(stream);
        a.report()
    });
}

#[test]
fn all_baselines_meet_definition_one() {
    check_failure_budget("misra-gries", 4, 0, |stream, _| {
        let mut a = MisraGriesBaseline::new(EPS, PHI, N);
        a.insert_all(stream);
        a.report()
    });
    check_failure_budget("space-saving", 4, 0, |stream, _| {
        let mut a = SpaceSaving::new(EPS, PHI, N);
        a.insert_all(stream);
        a.report()
    });
    check_failure_budget("lossy", 4, 0, |stream, _| {
        let mut a = LossyCounting::new(EPS, PHI, N);
        a.insert_all(stream);
        a.report()
    });
    check_failure_budget("sticky", 6, 1, |stream, seed| {
        let mut a = StickySampling::new(EPS, PHI, 0.1, N, seed);
        a.insert_all(stream);
        a.report()
    });
    check_failure_budget("count-min", 6, 1, |stream, seed| {
        let mut a = CountMin::new(EPS, PHI, 0.1, N, seed);
        a.insert_all(stream);
        a.report()
    });
    check_failure_budget("countsketch", 6, 1, |stream, seed| {
        let mut a = CountSketch::new(EPS, PHI, 0.1, N, seed);
        a.insert_all(stream);
        a.report()
    });
    check_failure_budget("sample-and-hold", 6, 1, |stream, seed| {
        let mut a = SampleAndHold::new(EPS, PHI, 0.1, N, M, seed);
        a.insert_all(stream);
        a.report()
    });
}

#[test]
fn guarantees_hold_under_adversarial_orders() {
    // The same multiset under four orders; the guarantee is
    // order-independent ("We do not make any assumption on the ordering
    // of the stream").
    let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
    let mut counts: Vec<(u64, u64)> = vec![
        (1, (0.30 * M as f64) as u64),
        (2, (0.22 * M as f64) as u64),
        (3, (0.15 * M as f64) as u64),
    ];
    let used: u64 = counts.iter().map(|&(_, c)| c).sum();
    for j in 0..1000u64 {
        counts.push((9_000_000 + j, (M - used) / 1000));
    }
    for policy in [
        OrderPolicy::Sorted,
        OrderPolicy::RoundRobin,
        OrderPolicy::HeavyLast,
        OrderPolicy::Shuffled,
    ] {
        let mut rng = StdRng::seed_from_u64(0x0DE8);
        let stream = arrange(&counts, policy, &mut rng);
        let oracle = ExactCounts::from_stream(&stream);
        let mut a1 = SimpleListHh::new(params, N, stream.len() as u64, 5).unwrap();
        a1.insert_all(&stream);
        assert!(
            satisfies_definition_one(&a1.report(), &oracle),
            "algo1 under {policy:?}"
        );
        let mut a2 = OptimalListHh::new(params, N, stream.len() as u64, 6).unwrap();
        a2.insert_all(&stream);
        assert!(
            satisfies_definition_one(&a2.report(), &oracle),
            "algo2 under {policy:?}"
        );
    }
}

#[test]
fn maximum_tracks_the_top_item() {
    let bad = failures(10, |seed| {
        let stream = planted(M, &[(42, 0.35), (43, 0.20)], 0xAA00 + seed);
        let oracle = ExactCounts::from_stream(&stream);
        let mut a = EpsMaximum::new(0.04, 0.1, N, M, seed).unwrap();
        a.insert_all(&stream);
        let est = match a.max_estimate() {
            Some(e) => e,
            None => return false,
        };
        let (_, true_max) = oracle.max().unwrap();
        // Value within εm; witness within εm of the max.
        (est.count - true_max as f64).abs() <= 0.04 * M as f64
            && oracle.freq(est.item) as f64 >= true_max as f64 - 0.04 * M as f64
    });
    assert!(bad <= 1, "{bad}/10 maximum trials failed");
}

#[test]
fn minimum_finds_rare_universe_items() {
    let universe = 12u64;
    let bad = failures(10, |seed| {
        // Item 4 planted at ~0.4%; everything else near-uniform.
        let mut counts: Vec<(u64, u64)> = (0..universe).map(|i| (i, M / 12)).collect();
        counts[4].1 = M / 250;
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        counts[0].1 += M - total;
        let mut rng = StdRng::seed_from_u64(0xB000 + seed);
        let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
        let oracle = ExactCounts::from_stream(&stream);
        let mut a = EpsMinimum::new(0.04, 0.2, universe, M, seed).unwrap();
        a.insert_all(&stream);
        oracle.is_eps_minimum(a.min_estimate().item, universe, (0.04 * M as f64) as u64)
    });
    assert!(bad <= 2, "{bad}/10 minimum trials failed");
}

#[test]
fn reports_are_sorted_and_deduplicated() {
    let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
    let stream = planted(M, &HEAVY, 0x50FA);
    let mut a = SimpleListHh::new(params, N, M, 3).unwrap();
    a.insert_all(&stream);
    let r = a.report();
    let counts: Vec<f64> = r.entries().iter().map(|e| e.count).collect();
    assert!(counts.windows(2).all(|w| w[0] >= w[1]), "sorted descending");
    let mut items = r.items();
    items.sort_unstable();
    items.dedup();
    assert_eq!(items.len(), r.len(), "no duplicate items");
}
