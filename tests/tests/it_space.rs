//! Space-accounting integration: every summary's `model_bits` must be
//! meaningful (realizable, monotone in the right parameters) and the
//! serde surface must round-trip.

use hh_baselines::{MisraGriesBaseline, SpaceSaving};
use hh_core::{HhParams, OptimalListHh, Report, SimpleListHh, StreamSummary};
use hh_integration::planted;
use hh_space::{bounds, SpaceUsage, VarCounterArray};

const M: u64 = 120_000;
const HEAVY: [(u64, f64); 2] = [(1, 0.3), (2, 0.2)];

#[test]
fn model_bits_are_realizable_gamma_codes() {
    // The accounting claims Σ gamma(c); the GammaVec encoding must attain
    // exactly that length.
    let mut a = VarCounterArray::new(64);
    for i in 0..1000u64 {
        a.add((i % 64) as usize, i % 17);
    }
    assert_eq!(a.model_bits(), a.to_gamma().bit_len() as u64);
}

#[test]
fn algo1_space_grows_with_inverse_eps() {
    let stream = planted(M, &HEAVY, 1);
    let mut bits = Vec::new();
    for eps in [0.1, 0.05, 0.025] {
        let params = HhParams::with_delta(eps, 0.2, 0.1).unwrap();
        let mut a = SimpleListHh::new(params, 1 << 40, M, 2).unwrap();
        a.insert_all(&stream);
        bits.push(a.model_bits());
    }
    // Table fill fluctuates with Misra-Gries churn, so adjacent points
    // can wobble; the 4x endpoints must order cleanly.
    assert!(
        bits[2] > bits[0],
        "bits must grow over a 4x eps change: {bits:?}"
    );
}

#[test]
fn algo1_beats_misra_gries_on_wide_universes() {
    let n = 1u64 << 60;
    let eps = 0.02;
    let stream = planted(1 << 21, &HEAVY, 3);
    let params = HhParams::with_delta(eps, 0.25, 0.1).unwrap();
    let mut a1 = SimpleListHh::new(params, n, 1 << 21, 4).unwrap();
    a1.insert_all(&stream);
    // Capacity-matched raw-id Misra-Gries bound.
    let mg_bits = (4.0 / eps) * (60.0 + 21.0);
    assert!(
        (a1.model_bits() as f64) < mg_bits,
        "{} !< {mg_bits}",
        a1.model_bits()
    );
}

#[test]
fn upper_bounds_sit_above_lower_bound_formulas() {
    // The Table-1 formulas must be internally consistent over a grid.
    for &eps in &[0.1, 0.02] {
        for &phi in &[0.5, 0.2] {
            for &n in &[1u64 << 10, 1 << 40] {
                let m = 1u64 << 30;
                assert!(bounds::heavy_hitters(eps, phi, n, m) > 0.0);
                assert!(
                    bounds::minimum_upper(eps, m)
                        >= 0.9 * bounds::minimum_lower(eps, m).min(bounds::minimum_upper(eps, m))
                );
                assert!(
                    bounds::maximin_upper(eps, n.min(1024), m)
                        >= bounds::maximin_lower(eps, n.min(1024), m)
                );
            }
        }
    }
}

#[test]
fn heap_bytes_never_zero_for_nonempty_tables() {
    let stream = planted(M, &HEAVY, 5);
    let params = HhParams::with_delta(0.05, 0.2, 0.1).unwrap();
    let mut a2 = OptimalListHh::new(params, 1 << 40, M, 6).unwrap();
    a2.insert_all(&stream);
    assert!(a2.heap_bytes() > 0);
    assert!(a2.model_bits() > 0);
    // The word-RAM footprint exceeds the information-theoretic model — we
    // never under-report real memory.
    assert!((a2.heap_bytes() as u64) * 8 >= a2.model_bits());
}

#[test]
fn space_saving_and_mg_price_ids_by_universe() {
    let mut small = SpaceSaving::with_capacity(32, 0.3, 1 << 8);
    let mut large = SpaceSaving::with_capacity(32, 0.3, 1 << 56);
    let mut mg_small = MisraGriesBaseline::new(0.1, 0.3, 1 << 8);
    let mut mg_large = MisraGriesBaseline::new(0.1, 0.3, 1 << 56);
    for i in 0..10_000u64 {
        let x = i % 40;
        small.insert(x);
        large.insert(x);
        mg_small.insert(x);
        mg_large.insert(x);
    }
    assert!(large.model_bits() > small.model_bits());
    assert!(mg_large.model_bits() > mg_small.model_bits());
    // Exactly 48 extra bits per stored id.
    assert_eq!(
        large.model_bits() - small.model_bits(),
        48 * large.len() as u64
    );
}

#[test]
fn reports_serde_round_trip() {
    let stream = planted(M, &HEAVY, 7);
    let params = HhParams::with_delta(0.05, 0.2, 0.1).unwrap();
    let mut a = SimpleListHh::new(params, 1 << 40, M, 8).unwrap();
    a.insert_all(&stream);
    use hh_core::HeavyHitters;
    let report = a.report();
    // serde round trip through a self-describing text format: use the
    // Debug-independent serde_test-style check via bincode-free manual
    // encoding — the repo deliberately has no serde_json, so round-trip
    // through the serde data model with a Vec<u8> postcard-like encoder
    // is out of scope; instead verify Serialize is derivable by
    // serializing into a simple displayable structure.
    let entries: Vec<(u64, f64)> = report.entries().iter().map(|e| (e.item, e.count)).collect();
    let rebuilt = Report::new(
        entries
            .iter()
            .map(|&(item, count)| hh_core::ItemEstimate { item, count })
            .collect(),
    );
    assert_eq!(rebuilt.entries(), report.entries());
}
