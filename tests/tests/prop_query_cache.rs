//! Property suite for the incremental query engine (PR 5): cached
//! `report()` / `estimate()` results must be **bit-identical** to a
//! freshly rebuilt summary across randomly interleaved
//! insert / batch-insert / merge / snapshot-restore / query sequences,
//! for all nine implementations (the dyadic banks cache the heavy
//! forest on top of the usual report path).
//!
//! The cold rebuild comes for free from the cache design: `Clone`
//! produces a summary with a cold read cache (the cache holds derived
//! state only), so `s.clone().report()` always runs the full scan, and
//! `S::from_bytes(&s.to_bytes())` exercises the restore path — both are
//! compared against the possibly-warm `s.report()` after every probe
//! point. Queries are *interleaved with* the mutations rather than run
//! once at the end, because the bugs this suite exists to catch are
//! missing invalidations: a mutation that leaves a stale cache behind is
//! only visible if something cached a value before it ran.

use hh_baselines::{
    CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving, StickySampling,
};
use hh_core::{
    FrequencyEstimator, HeavyHitters, HhParams, MergeableSummary, OptimalListHh, SimpleListHh,
    StreamSummary,
};
use hh_dyadic::DyadicHh;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 0.05;
const PHI: f64 = 0.15;
/// Advertised stream length for the sampled summaries (big enough that
/// the sampled regime engages; the op mix inserts far fewer).
const M: u64 = 200_000;
/// Point-query probes: the skewed favorites, some tail ids, one alien.
const PROBES: [u64; 6] = [0, 1, 2, 37, 4096, 900_001];

/// A skewed random item: a few hot ids plus a light tail.
fn item(rng: &mut StdRng) -> u64 {
    if rng.gen_bool(0.4) {
        rng.gen_range(0..4u64)
    } else {
        rng.gen_range(0..5000u64)
    }
}

fn batch(rng: &mut StdRng) -> Vec<u64> {
    let len = rng.gen_range(1..600usize);
    (0..len).map(|_| item(rng)).collect()
}

/// The coherence check: the (possibly cached) live answers must equal a
/// cold clone's answers bit for bit.
fn check_against_cold<S>(s: &S, ctx: &str)
where
    S: HeavyHitters + FrequencyEstimator + Clone,
{
    let live = s.report();
    // A second call is a guaranteed cache hit; it must change nothing.
    assert_eq!(
        live.entries(),
        s.report().entries(),
        "{ctx}: repeated query disagrees with itself"
    );
    let cold = s.clone();
    assert_eq!(
        live.entries(),
        cold.report().entries(),
        "{ctx}: cached report differs from cold rebuild"
    );
    for p in PROBES {
        assert_eq!(
            s.estimate(p).to_bits(),
            cold.estimate(p).to_bits(),
            "{ctx}: cached estimate for probe {p} differs from cold rebuild"
        );
    }
}

/// Random interleaving driver for mergeable summaries. `make(j)`
/// builds merge-compatible instances (seed-aligned where that matters);
/// instance 0 is the subject, later indices feed merges.
fn drive_mergeable<S, F>(make: F, seed: u64, ops: usize, ctx: &str)
where
    S: StreamSummary + MergeableSummary + HeavyHitters + FrequencyEstimator + Clone,
    F: Fn(usize) -> S,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = make(0);
    let mut donor_idx = 1usize;
    for op in 0..ops {
        match rng.gen_range(0..6u32) {
            0 => {
                let x = item(&mut rng);
                s.insert(x);
            }
            1 => s.insert_batch(&batch(&mut rng)),
            2 => {
                // Merge a freshly loaded donor in; queries afterwards
                // must see its mass (stale caches would not).
                let mut donor = make(donor_idx);
                donor_idx += 1;
                donor.insert_batch(&batch(&mut rng));
                s.merge_from(&donor).expect("compatible by construction");
            }
            3 => {
                // Snapshot round trip mid-sequence; the restored value
                // replaces the live one and must behave identically.
                s = S::from_bytes(&s.to_bytes()).expect("own snapshot restores");
            }
            _ => check_against_cold(&s, &format!("{ctx} op {op}")),
        }
    }
    check_against_cold(&s, &format!("{ctx} final"));
    // And the restore path one last time, against the warm summary.
    let restored = S::from_bytes(&s.to_bytes()).expect("own snapshot restores");
    assert_eq!(
        s.report().entries(),
        restored.report().entries(),
        "{ctx}: warm report differs from restored rebuild"
    );
}

/// Interleaving driver for summaries without merge/snapshot
/// (StickySampling): insert / batch / query only.
fn drive_plain<S, F>(make: F, seed: u64, ops: usize, ctx: &str)
where
    S: StreamSummary + HeavyHitters + FrequencyEstimator + Clone,
    F: Fn() -> S,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = make();
    for op in 0..ops {
        match rng.gen_range(0..4u32) {
            0 => {
                let x = item(&mut rng);
                s.insert(x);
            }
            1 => s.insert_batch(&batch(&mut rng)),
            _ => check_against_cold(&s, &format!("{ctx} op {op}")),
        }
    }
    check_against_cold(&s, &format!("{ctx} final"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn algo1_cache_coherent_under_interleaving(
        seed in 0u64..1 << 32,
        ops in 20usize..60,
    ) {
        let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
        drive_mergeable(
            |j| SimpleListHh::with_seeds(params, 1 << 20, M, seed ^ 0xE1, 100 + j as u64).unwrap(),
            seed,
            ops,
            "algo1",
        );
    }

    #[test]
    fn algo2_cache_coherent_under_interleaving(
        seed in 0u64..1 << 32,
        ops in 20usize..60,
    ) {
        let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
        drive_mergeable(
            |j| OptimalListHh::with_seeds(params, 1 << 20, M, seed ^ 0xE2, 200 + j as u64).unwrap(),
            seed,
            ops,
            "algo2",
        );
    }

    #[test]
    fn counter_baselines_cache_coherent_under_interleaving(
        seed in 0u64..1 << 32,
        ops in 20usize..50,
    ) {
        drive_mergeable(
            |_| MisraGriesBaseline::new(EPS, PHI, 1 << 20),
            seed,
            ops,
            "misra-gries",
        );
        drive_mergeable(
            |_| SpaceSaving::with_capacity(64, PHI, 1 << 20),
            seed,
            ops,
            "space-saving",
        );
        drive_mergeable(
            |_| LossyCounting::new(EPS, PHI, 1 << 20),
            seed,
            ops,
            "lossy",
        );
    }

    #[test]
    fn sketch_baselines_cache_coherent_under_interleaving(
        seed in 0u64..1 << 32,
        ops in 20usize..50,
    ) {
        drive_mergeable(
            |_| CountMin::new(EPS, PHI, 0.05, 1 << 20, seed ^ 0xE3),
            seed,
            ops,
            "count-min",
        );
        drive_mergeable(
            |_| CountSketch::new(0.1, PHI, 0.1, 1 << 20, seed ^ 0xE4),
            seed,
            ops,
            "count-sketch",
        );
    }

    #[test]
    fn dyadic_banks_cache_coherent_under_interleaving(
        seed in 0u64..1 << 32,
        ops in 20usize..40,
    ) {
        drive_mergeable(
            |_| DyadicHh::count_min(EPS, PHI, 0.05, 1 << 16, seed ^ 0xE6).unwrap(),
            seed,
            ops,
            "dyadic-cm",
        );
        let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
        drive_mergeable(
            |j| DyadicHh::optimal(params, 1 << 16, M, seed ^ 0xE7, 300 + j as u64).unwrap(),
            seed,
            ops,
            "dyadic-algo2",
        );
    }

    #[test]
    fn sticky_sampling_cache_coherent_under_interleaving(
        seed in 0u64..1 << 32,
        ops in 20usize..60,
    ) {
        drive_plain(
            || StickySampling::new(EPS, PHI, 0.1, 1 << 20, seed ^ 0xE5),
            seed,
            ops,
            "sticky",
        );
    }
}

/// The dyadic-specific cached path: `heavy_ranges(φ)` at the
/// configured threshold is memoized, so after every mutation kind the
/// warm forest must equal a cold clone's.
#[test]
fn warm_heavy_forest_sees_every_mutation_kind() {
    let mut bank = DyadicHh::count_min(0.05, 0.2, 0.05, 1 << 16, 77).unwrap();
    bank.insert_batch(&vec![0x4242u64; 500]);
    let warm = bank.heavy_ranges(0.2);
    assert_eq!(warm, bank.clone().heavy_ranges(0.2));
    assert!(warm.iter().any(|r| r.level == 16 && r.index == 0x4242));

    // Scalar inserts shift the heavy set to a different leaf entirely.
    for _ in 0..2_000 {
        bank.insert(0x1111);
    }
    let after = bank.heavy_ranges(0.2);
    assert_eq!(
        after,
        bank.clone().heavy_ranges(0.2),
        "stale forest after inserts"
    );
    assert!(after.iter().any(|r| r.level == 16 && r.index == 0x1111));

    // Merge: the donor's mass must appear in the warm forest.
    let mut donor = DyadicHh::count_min(0.05, 0.2, 0.05, 1 << 16, 77).unwrap();
    donor.insert_batch(&vec![0x9999u64; 4_000]);
    bank.merge_from(&donor).unwrap();
    let merged = bank.heavy_ranges(0.2);
    assert_eq!(
        merged,
        bank.clone().heavy_ranges(0.2),
        "stale forest after merge"
    );
    assert!(merged.iter().any(|r| r.level == 16 && r.index == 0x9999));

    // Restore-then-continue starts cold and keeps tracking.
    let mut r = DyadicHh::<CountMin>::from_bytes(&bank.to_bytes()).unwrap();
    assert_eq!(r.heavy_ranges(0.2), merged);
    r.insert_batch(&vec![0x7777u64; 20_000]);
    assert_eq!(
        r.heavy_ranges(0.2),
        r.clone().heavy_ranges(0.2),
        "stale forest after restore-then-continue"
    );
}

/// A directed regression for the exact failure mode a missing
/// invalidation produces: warm the cache, mutate, and require the next
/// answer to reflect the mutation.
#[test]
fn warm_cache_sees_every_mutation_kind() {
    let params = HhParams::with_delta(0.1, 0.3, 0.1).unwrap();
    // Short advertised stream => p = 1, so every insert is sampled and
    // must invalidate.
    let mut a = OptimalListHh::with_seeds(params, 1 << 20, 1_000, 3, 4).unwrap();
    let heavy = vec![9u64; 600];
    a.insert_batch(&heavy);
    let before = a.report();
    assert!(before.contains(9));

    // Scalar inserts after a warm query: enough mass that the sampled
    // counters certainly move, and the cached answer must track the
    // cold rebuild exactly.
    let est_before = before.estimate(9).unwrap();
    for _ in 0..300 {
        a.insert(9);
    }
    let after_insert = a.report();
    assert_eq!(
        after_insert.entries(),
        a.clone().report().entries(),
        "stale cache after scalar inserts"
    );
    assert!(
        after_insert.estimate(9).unwrap() > est_before,
        "300 sampled inserts did not move the estimate"
    );

    // Merge after a warm query: the donor's mass must appear, and the
    // cached answer must again equal the cold rebuild. The donor gets
    // enough nines that its buckets cross epoch 0 — mass below the
    // epoch-0 threshold sits in the estimator's documented pre-epoch-0
    // blind spot and would legitimately not move the estimate.
    let _ = a.report();
    let mut donor = OptimalListHh::with_seeds(params, 1 << 20, 1_000, 3, 5).unwrap();
    donor.insert_batch(&vec![9u64; 1_000]);
    a.merge_from(&donor).unwrap();
    let after_merge = a.report();
    assert_eq!(
        after_merge.entries(),
        a.clone().report().entries(),
        "stale cache after merge"
    );
    assert!(
        after_merge.estimate(9).unwrap() > after_insert.estimate(9).unwrap(),
        "merged mass did not appear in the report"
    );

    // Restore-then-continue: the restored summary starts cold, agrees
    // with the warm original, and then tracks its own mutations.
    let mut r = OptimalListHh::from_bytes(&a.to_bytes()).unwrap();
    assert_eq!(r.report().entries(), a.report().entries());
    for _ in 0..300 {
        r.insert(9);
    }
    assert_eq!(
        r.report().entries(),
        r.clone().report().entries(),
        "stale cache after restore-then-continue"
    );
}
