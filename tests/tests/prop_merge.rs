//! Property suite for the mergeability + persistence subsystem (PR 4):
//! for every [`MergeableSummary`] in the workspace,
//!
//! 1. **merge-of-partitions ≡ single-stream ingestion** — summarizing an
//!    arbitrary positional partition of a stream and merging reports the
//!    same heavy-hitter set as one summary over the whole stream, with
//!    estimates within the type's error bound, across random splits,
//!    orderings, and Zipf workloads;
//! 2. **snapshot → restore bit-identity** — `from_bytes(to_bytes(s))`
//!    reproduces `report()` (and the space accounting) bit for bit.

use hh_baselines::{CountMin, CountSketch, LossyCounting, MisraGriesBaseline, SpaceSaving};
use hh_core::{
    FrequencyEstimator, HeavyHitters, HhParams, MergeableSummary, MisraGries, OptimalListHh,
    Report, SimpleListHh, StreamSummary,
};
use hh_integration::planted;
use hh_space::SpaceUsage;
use hh_streams::{collect_stream, ZipfGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const M: u64 = 200_000;
const EPS: f64 = 0.05;
const PHI: f64 = 0.15;

/// The standard workload: planted heavies (30%, φ+2%, and one pinned
/// under φ−ε) over a light tail, or a Zipf(1.1) stream.
fn workload(seed: u64, zipf: bool) -> Vec<u64> {
    if zipf {
        let mut rng = StdRng::seed_from_u64(seed);
        collect_stream(&mut ZipfGenerator::new(1 << 20, 1.1), M as usize, &mut rng)
    } else {
        planted(
            M,
            &[(7, 0.30), (8, PHI + 0.02), (55, PHI - EPS - 0.02)],
            seed,
        )
    }
}

/// Cuts `stream` into `parts` random contiguous chunks (every chunk
/// possibly empty) — an arbitrary positional partition.
fn random_partition(stream: &[u64], parts: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cuts: Vec<usize> = (0..parts - 1)
        .map(|_| rng.gen_range(0..=stream.len()))
        .collect();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for &c in &cuts {
        out.push(stream[start..c].to_vec());
        start = c;
    }
    out.push(stream[start..].to_vec());
    out
}

/// Drives the partition → merge path and returns (merged, single).
fn merge_vs_single<S, F>(stream: &[u64], parts: usize, seed: u64, make: F) -> (S, S)
where
    S: StreamSummary + MergeableSummary,
    F: Fn(usize) -> S,
{
    let chunks = random_partition(stream, parts, seed ^ 0x9A);
    let mut summaries: Vec<S> = (0..parts).map(&make).collect();
    for (s, chunk) in summaries.iter_mut().zip(&chunks) {
        s.insert_batch(chunk);
    }
    let mut merged = summaries.remove(0);
    for s in &summaries {
        merged.merge_from(s).expect("seed-aligned parts must merge");
    }
    let mut single = make(parts); // distinct stream seed is fine
    single.insert_batch(stream);
    (merged, single)
}

/// Definition-1 agreement between a merged report and a single-stream
/// report on a planted workload: both must contain the planted heavies,
/// neither may contain the pinned-light item, and merged estimates stay
/// within `eps·m` of the single-stream estimates for reported items.
fn assert_reports_agree(merged: &Report, single: &Report, zipf: bool, ctx: &str) {
    if !zipf {
        for item in [7u64, 8] {
            assert!(merged.contains(item), "{ctx}: merged misses {item}");
            assert!(single.contains(item), "{ctx}: single misses {item}");
        }
        assert!(!merged.contains(55), "{ctx}: merged reports light item");
        assert!(!single.contains(55), "{ctx}: single reports light item");
    }
    for e in merged.entries() {
        if let Some(se) = single.estimate(e.item) {
            assert!(
                (e.count - se).abs() <= 2.0 * EPS * M as f64,
                "{ctx}: item {} merged {} vs single {se}",
                e.item,
                e.count
            );
        }
    }
}

/// Snapshot round-trip: report, estimates on probes, and model bits
/// must be bit-identical.
fn assert_snapshot_identity<S>(s: &S, probes: &[u64])
where
    S: MergeableSummary + HeavyHitters + FrequencyEstimator + SpaceUsage,
{
    let restored = S::from_bytes(&s.to_bytes()).expect("own snapshot must restore");
    assert_eq!(s.report().entries(), restored.report().entries());
    assert_eq!(s.model_bits(), restored.model_bits());
    for &p in probes {
        assert_eq!(
            s.estimate(p).to_bits(),
            restored.estimate(p).to_bits(),
            "probe {p}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn algo1_merge_of_partitions_matches_single_stream(
        seed in 0u64..1 << 32,
        parts in 2usize..6,
        zipf_sel in 0u64..2,
    ) {
        let zipf = zipf_sel == 1;
        let stream = workload(seed, zipf);
        let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
        let (merged, single) = merge_vs_single(&stream, parts, seed, |j| {
            SimpleListHh::with_seeds(params, 1 << 40, M, seed ^ 0xA1, 1000 + j as u64).unwrap()
        });
        assert_reports_agree(&merged.report(), &single.report(), zipf, "algo1");
        assert_snapshot_identity(&merged, &[7, 8, 55, 9_000_001]);
    }

    #[test]
    fn algo2_merge_of_partitions_matches_single_stream(
        seed in 0u64..1 << 32,
        parts in 2usize..6,
        zipf_sel in 0u64..2,
    ) {
        let zipf = zipf_sel == 1;
        let stream = workload(seed, zipf);
        let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();
        let (merged, single) = merge_vs_single(&stream, parts, seed, |j| {
            OptimalListHh::with_seeds(params, 1 << 40, M, seed ^ 0xA2, 2000 + j as u64).unwrap()
        });
        assert_reports_agree(&merged.report(), &single.report(), zipf, "algo2");
        assert_snapshot_identity(&merged, &[7, 8, 55, 9_000_001]);
    }

    #[test]
    fn deterministic_summaries_merge_within_bounds(
        seed in 0u64..1 << 32,
        parts in 2usize..6,
        zipf_sel in 0u64..2,
    ) {
        let zipf = zipf_sel == 1;
        let stream = workload(seed, zipf);

        // Misra–Gries: merged estimates undercount by ≤ m/(k+1).
        let (merged, single) = merge_vs_single(&stream, parts, seed, |_| {
            MisraGriesBaseline::new(EPS, PHI, 1 << 40)
        });
        assert_reports_agree(&merged.report(), &single.report(), zipf, "mg");
        assert_snapshot_identity(&merged, &[7, 8, 55]);

        // Space-Saving: merged counts never undercount the truth.
        let (merged, single) = merge_vs_single(&stream, parts, seed, |_| {
            SpaceSaving::with_capacity(64, PHI, 1 << 40)
        });
        assert_reports_agree(&merged.report(), &single.report(), zipf, "ss");
        assert_snapshot_identity(&merged, &[7, 8, 55]);

        // Lossy Counting.
        let (merged, single) = merge_vs_single(&stream, parts, seed, |_| {
            LossyCounting::new(EPS, PHI, 1 << 40)
        });
        assert_reports_agree(&merged.report(), &single.report(), zipf, "lossy");
        assert_snapshot_identity(&merged, &[7, 8, 55]);
    }

    #[test]
    fn sketches_merge_within_bounds(
        seed in 0u64..1 << 32,
        parts in 2usize..6,
        zipf_sel in 0u64..2,
    ) {
        let zipf = zipf_sel == 1;
        let stream = workload(seed, zipf);

        // Count-Min: seed-aligned (same constructor seed per part).
        let (merged, single) = merge_vs_single(&stream, parts, seed, |_| {
            CountMin::new(EPS, PHI, 0.05, 1 << 40, seed ^ 0xC1)
        });
        assert_reports_agree(&merged.report(), &single.report(), zipf, "cm");
        // CM is fully deterministic given the seed, so merged ≡ single
        // exactly: cell-wise sums of the partition equal the stream's.
        for probe in [7u64, 8, 55, 12345] {
            prop_assert_eq!(merged.estimate(probe), single.estimate(probe));
        }
        assert_snapshot_identity(&merged, &[7, 8, 55]);

        // CountSketch: same exact-equality argument.
        let (merged, single) = merge_vs_single(&stream, parts, seed, |_| {
            CountSketch::new(0.1, PHI, 0.1, 1 << 40, seed ^ 0xC2)
        });
        for probe in [7u64, 8, 55, 12345] {
            prop_assert_eq!(merged.estimate(probe), single.estimate(probe));
        }
        assert_snapshot_identity(&merged, &[7, 8, 55]);
    }

    #[test]
    fn dyadic_bank_merge_of_partitions_matches_single_stream(
        seed in 0u64..1 << 32,
        parts in 2usize..6,
    ) {
        // The ninth summary. The Count-Min bank is deterministic given
        // its seed, so partition-and-merge is *exact*: estimates,
        // range estimates, and the heavy forest all match the
        // single-stream bank (prop_dyadic.rs covers the sampled bank
        // and the dyadic-specific guarantees in depth).
        let stream = workload(seed, false);
        let mut banks =
            hh_dyadic::seed_aligned_count_min(EPS, PHI, 0.05, 1 << 16, parts, seed ^ 0xA9)
                .unwrap();
        let chunks = random_partition(&stream, parts, seed ^ 0x9A);
        for (b, chunk) in banks.iter_mut().zip(&chunks) {
            // The planted workload's light tail lives at 9_000_000+;
            // fold it into the 16-bit space the bank covers.
            let folded: Vec<u64> = chunk.iter().map(|&x| x & 0xFFFF).collect();
            b.insert_batch(&folded);
        }
        let mut merged = banks.remove(0);
        for b in &banks {
            merged.merge_from(b).expect("seed-aligned banks must merge");
        }
        let mut single =
            hh_dyadic::DyadicHh::count_min(EPS, PHI, 0.05, 1 << 16, seed ^ 0xA9).unwrap();
        let folded: Vec<u64> = stream.iter().map(|&x| x & 0xFFFF).collect();
        single.insert_batch(&folded);
        for probe in [7u64, 8, 55, 12345] {
            prop_assert_eq!(merged.estimate(probe), single.estimate(probe));
        }
        prop_assert_eq!(merged.heavy_ranges(PHI), single.heavy_ranges(PHI));
        prop_assert_eq!(
            merged.range_estimate(0, 63).to_bits(),
            single.range_estimate(0, 63).to_bits()
        );
        assert_snapshot_identity(&merged, &[7, 8, 55]);
    }

    #[test]
    fn misra_gries_table_merge_keeps_classic_bound(
        seed in 0u64..1 << 32,
        parts in 2usize..8,
    ) {
        // The shared core table under arbitrary partitions of a random
        // stream: merged estimate within (combined m)/(k+1) of truth.
        let mut rng = StdRng::seed_from_u64(seed);
        let stream: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..200u64)).collect();
        let k = 15usize;
        let (merged, _) = merge_vs_single(&stream, parts, seed, |_| MisraGries::new(k, 16));
        let bound = stream.len() as u64 / (k as u64 + 1);
        for key in 0..200u64 {
            let truth = stream.iter().filter(|&&x| x == key).count() as u64;
            let est = merged.estimate(key);
            prop_assert!(est <= truth, "key {key} overestimates");
            prop_assert!(est + bound >= truth, "key {key} undercounts");
        }
        // Snapshot identity at the table level (content equality).
        let restored = MisraGries::from_bytes(&merged.to_bytes()).unwrap();
        prop_assert_eq!(&merged, &restored);
        prop_assert_eq!(merged.model_bits(), restored.model_bits());
    }
}

#[test]
fn snapshots_are_rejected_across_types() {
    let params = HhParams::new(0.1, 0.3).unwrap();
    let a1 = SimpleListHh::new(params, 1 << 20, 1000, 0).unwrap();
    let a2 = OptimalListHh::new(params, 1 << 20, 1000, 0).unwrap();
    let mg = MisraGriesBaseline::new(0.1, 0.3, 1 << 20);
    assert!(SimpleListHh::from_bytes(&a2.to_bytes()).is_err());
    assert!(OptimalListHh::from_bytes(&mg.to_bytes()).is_err());
    assert!(MisraGriesBaseline::from_bytes(&a1.to_bytes()).is_err());
    assert!(SpaceSaving::from_bytes(b"").is_err());
    assert!(CountMin::from_bytes(&[0u8; 16]).is_err());
}

#[test]
fn snapshot_resume_continues_bit_identically() {
    // Checkpoint mid-stream, restore, finish on both copies: reports
    // and sample counts agree exactly (RNG state travels with the
    // snapshot). This is the checkpoint/resume scenario end to end.
    let stream = workload(3, false);
    let (head, tail) = stream.split_at(stream.len() / 2);
    let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();

    let mut a2 = OptimalListHh::new(params, 1 << 40, M, 4).unwrap();
    a2.insert_batch(head);
    let mut resumed = OptimalListHh::from_bytes(&a2.to_bytes()).unwrap();
    a2.insert_batch(tail);
    resumed.insert_batch(tail);
    assert_eq!(a2.report().entries(), resumed.report().entries());
    assert_eq!(a2.samples(), resumed.samples());
    assert_eq!(a2.model_bits(), resumed.model_bits());

    let mut a1 = SimpleListHh::new(params, 1 << 40, M, 5).unwrap();
    a1.insert_batch(head);
    let mut resumed = SimpleListHh::from_bytes(&a1.to_bytes()).unwrap();
    a1.insert_batch(tail);
    resumed.insert_batch(tail);
    assert_eq!(a1.report().entries(), resumed.report().entries());
    assert_eq!(a1.samples(), resumed.samples());
}

#[test]
fn merged_space_is_at_most_the_sum_of_parts() {
    // The hh-space merged-size accounting argument, demonstrated on
    // real summaries: model_bits(merge(a, b)) ≤ model_bits(a) +
    // model_bits(b) for the counter-table types (gamma subadditivity).
    let stream = workload(9, false);
    let (left, right) = stream.split_at(stream.len() / 2);
    let params = HhParams::with_delta(EPS, PHI, 0.1).unwrap();

    let mut a = OptimalListHh::with_seeds(params, 1 << 40, M, 1, 10).unwrap();
    let mut b = OptimalListHh::with_seeds(params, 1 << 40, M, 1, 11).unwrap();
    a.insert_batch(left);
    b.insert_batch(right);
    let (sum_a, sum_b) = (a.model_bits(), b.model_bits());
    a.merge_from(&b).unwrap();
    assert!(
        a.model_bits() <= sum_a + sum_b,
        "merged {} > parts {sum_a} + {sum_b}",
        a.model_bits()
    );
}
