//! Property suite for the optimized Algorithm 2 hot path (proptest):
//! after the bit-budgeted-RNG / fast-hash / integer-epoch rewrite, the
//! algorithm must still find planted heavy hitters and suppress
//! (φ−ε)-light items across orderings and Zipf workloads, and same-seed
//! runs must stay bit-identical (determinism survives the RNG
//! restructuring).

use hh_core::{HeavyHitters, HhParams, OptimalListHh, StreamSummary};
use hh_space::SpaceUsage;
use hh_streams::{arrange, collect_stream, ExactCounts, OrderPolicy, ZipfGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ORDERS: [OrderPolicy; 4] = [
    OrderPolicy::Shuffled,
    OrderPolicy::Sorted,
    OrderPolicy::RoundRobin,
    OrderPolicy::HeavyLast,
];

/// Planted workload: two clear heavy hitters, one item pinned just
/// under (φ−ε)m, and a light-id tail filling the rest.
fn planted_with_boundary(m: u64, phi: f64, eps: f64, seed: u64, order: OrderPolicy) -> Vec<u64> {
    let light_frac = phi - eps - 0.02;
    let mut counts: Vec<(u64, u64)> = vec![
        (1, (0.30 * m as f64) as u64),
        (2, (phi * m as f64) as u64 + m / 200),
        (3, (light_frac * m as f64) as u64),
    ];
    let used: u64 = counts.iter().map(|&(_, c)| c).sum();
    let tail_ids = 2048u64;
    let fill = m - used;
    for j in 0..tail_ids {
        let c = fill / tail_ids + u64::from(j < fill % tail_ids);
        if c > 0 {
            counts.push((1_000_000 + j, c));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    arrange(&counts, order, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn planted_heavy_found_light_suppressed_all_orderings(
        seed in 0u64..1 << 32,
        order_idx in 0usize..4,
    ) {
        let (m, phi, eps) = (400_000u64, 0.15, 0.05);
        let stream = planted_with_boundary(m, phi, eps, seed, ORDERS[order_idx]);
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        let mut a = OptimalListHh::new(params, 1 << 40, m, seed ^ 0x51C2).unwrap();
        a.insert_all(&stream);
        let r = a.report();
        prop_assert!(r.contains(1), "missing 30% item ({:?})", ORDERS[order_idx]);
        prop_assert!(r.contains(2), "missing phi-heavy item ({:?})", ORDERS[order_idx]);
        prop_assert!(
            !r.contains(3),
            "(phi-eps)-light item reported ({:?})",
            ORDERS[order_idx]
        );
        // Reported estimates stay within the eps*m guarantee.
        let est = r.estimate(1).unwrap();
        prop_assert!(
            (est - 0.30 * m as f64).abs() <= eps * m as f64,
            "estimate {est} off by more than eps*m"
        );
    }

    #[test]
    fn zipf_recall_and_suppression(seed in 0u64..1 << 32) {
        let (m, phi, eps) = (300_000usize, 0.1, 0.04);
        let mut gen = ZipfGenerator::new(1 << 30, 1.3);
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = collect_stream(&mut gen, m, &mut rng);
        let oracle = ExactCounts::from_stream(&stream);
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        let mut a = OptimalListHh::new(params, 1 << 30, m as u64, seed ^ 0xBEEF).unwrap();
        a.insert_all(&stream);
        let r = a.report();
        for (item, f) in oracle.heavy_hitters(phi) {
            prop_assert!(r.contains(item), "missing zipf HH {item} (f = {f})");
        }
        for item in oracle.forbidden(phi, eps) {
            prop_assert!(!r.contains(item), "forbidden zipf item {item} reported");
        }
    }

    #[test]
    fn same_seed_runs_are_bit_identical(
        seed in 0u64..1 << 32,
        algo_seed in 0u64..1 << 32,
    ) {
        let (m, phi, eps) = (150_000u64, 0.2, 0.05);
        let stream = planted_with_boundary(m, phi, eps, seed, OrderPolicy::Shuffled);
        let params = HhParams::with_delta(eps, phi, 0.1).unwrap();
        let run = || {
            let mut a = OptimalListHh::new(params, 1 << 40, m, algo_seed).unwrap();
            a.insert_all(&stream);
            a
        };
        let (a, b) = (run(), run());
        // Bit-identical externals: report, sample count, and the full
        // space accounting (which hashes every table cell).
        let (ra, rb) = (a.report(), b.report());
        prop_assert_eq!(ra.entries(), rb.entries());
        prop_assert_eq!(a.samples(), b.samples());
        prop_assert_eq!(a.model_bits(), b.model_bits());
        prop_assert_eq!(a.component_bits(), b.component_bits());
    }
}
