//! Fault-injection suite for the serving daemon (PR 8): the whole
//! `hh-server` stack — framing, protocol decode, admission, tenant
//! runtime, checkpointing — is driven through the `hh-faults`
//! corruptors and the [`hh_faults::net::FaultyConn`] transport faults,
//! and the contract is:
//!
//! 1. **fuzzed request frames** (truncation at every offset, sampled
//!    bit flips, inflated length prefixes, tag swaps) get a structured
//!    `Error` response or a clean close — never a panic, never a stuck
//!    connection — and the server stays fully serviceable afterwards;
//! 2. an **oversized frame prefix** is refused with `FrameTooLarge`
//!    before the server allocates from the lie, and the connection is
//!    closed;
//! 3. **mid-frame disconnects** and **stalls past the frame deadline**
//!    leave the server healthy: the victim connection is reaped, fresh
//!    clients are served;
//! 4. a **concurrent soak** with injected mid-request disconnects ends
//!    with every tenant byte-identical to a sequential oracle fed only
//!    the acknowledged batches;
//! 5. **kill -9** (abrupt process death, simulated by `Server::kill`)
//!    under checkpoint-only durability loses at most the
//!    un-checkpointed window: a restart over the same store serves
//!    exactly the last checkpoint, bit-for-bit — and under the
//!    write-ahead log (PR 10) it loses **nothing acked**: the restart
//!    serves the bundle plus the replayed log tail, byte-identical to
//!    an oracle fed every acked batch;
//! 6. the same protocol works over a **Unix domain socket**.

use hh_faults::corrupt;
use hh_faults::net::FaultyConn;
use hh_server::client::Client;
use hh_server::durability::Durability;
use hh_server::facade::{DynSummary, SummaryKind, TenantSpec};
use hh_server::proto::{read_frame, write_frame, ProtocolError, Request, Response, MAX_FRAME_LEN};
use hh_server::server::{Endpoint, Server, ServerConfig};
use hh_server::RetryPolicy;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hh-server-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> TenantSpec {
    TenantSpec {
        kind: SummaryKind::SpaceSaving,
        shards: 1,
        m: 100_000,
        universe: 1 << 20,
        ..TenantSpec::default()
    }
}

fn start_tcp(tag: &str) -> (Server, PathBuf) {
    let root = tmp_root(tag);
    let server = Server::start(
        ServerConfig::fast(&root),
        Endpoint::Tcp("127.0.0.1:0".parse().unwrap()),
    )
    .unwrap();
    (server, root)
}

fn raw_conn(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr().unwrap()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
}

/// Sends one (possibly corrupt) body as a well-formed frame and returns
/// what came back: a decoded response, or `None` if the server closed
/// or errored the connection. The 5-second read timeout turns a stuck
/// connection into a test failure rather than a hang.
fn exchange(server: &Server, body: &[u8]) -> Option<Response> {
    let mut stream = raw_conn(server);
    if write_frame(&mut stream, body).is_err() {
        return None;
    }
    match read_frame(&mut stream) {
        Ok(Some(rsp)) => Response::decode(&rsp).ok(),
        _ => None,
    }
}

#[test]
fn fuzzed_request_frames_never_kill_the_server() {
    let (server, root) = start_tcp("fuzz");
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    client.create("canary", spec()).unwrap();
    client.ingest("canary", 0, &[7; 2_000]).unwrap();

    let valid = Request::Query {
        tenant: "canary".to_string(),
    }
    .encode();

    // (1a) Truncation at every offset: well-formed frame, short body.
    for cut in corrupt::truncations(&valid) {
        match exchange(&server, cut) {
            Some(Response::Error { .. }) | None => {}
            Some(other) => panic!("truncated body answered {other:?}"),
        }
    }

    // (1b) Sampled single-bit flips: the checksum trailer (or the tag
    // match, or the decode bounds) must catch every one; a flip may
    // also land harmlessly and still decode, but never panic. 128
    // deterministic samples cover tag, payload, and trailer regions.
    for flipped in corrupt::bit_flips(&valid, 0x5EED_F00D, 128) {
        let _ = exchange(&server, &flipped);
    }

    // (1c) Inflated length prefixes inside the body: the decoder's own
    // bounds must refuse before allocating from the lie.
    for inflated in corrupt::inflate_length_prefixes(&valid) {
        match exchange(&server, &inflated) {
            Some(Response::Error { .. }) | None => {}
            Some(other) => panic!("inflated prefix answered {other:?}"),
        }
    }

    // (1d) Tag swap: a response body where a request belongs.
    let swapped = corrupt::swap_tag(&valid, "hh.proto.req.v1", "hh.proto.rsp.v1")
        .expect("request bodies start with the request tag");
    assert!(
        matches!(
            exchange(&server, &swapped),
            Some(Response::Error { .. }) | None
        ),
        "tag-swapped body must be refused"
    );

    // After the whole assault the server still serves: the canary
    // tenant is intact and reachable from a fresh connection.
    let mut after = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    after.ping().unwrap();
    let (entries, _) = after.query("canary").unwrap();
    assert!(entries.iter().any(|&(item, _)| item == 7));
    let health = after.health().unwrap();
    assert_eq!(health.tenants, 1);
    assert!(health.quarantined.is_empty());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn oversized_frame_prefix_is_refused_then_closed() {
    let (server, root) = start_tcp("bigframe");
    let mut stream = raw_conn(&server);
    let lie = (MAX_FRAME_LEN as u32) + 1;
    stream.write_all(&lie.to_le_bytes()).unwrap();

    // The server answers with a structured FrameTooLarge error...
    let body = read_frame(&mut stream)
        .expect("error frame arrives")
        .expect("connection not silently closed");
    match Response::decode(&body).unwrap() {
        Response::Error { code, message } => {
            let err = ProtocolError::from_wire(code, message);
            assert!(matches!(err, ProtocolError::FrameTooLarge { .. }), "{err}");
        }
        other => panic!("wanted Error, got {other:?}"),
    }
    // ...and then closes: the next read sees EOF, not a hang.
    assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));

    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    client.ping().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn mid_frame_disconnects_leave_the_server_serviceable() {
    let (server, root) = start_tcp("sever");
    let body = Request::Ingest {
        tenant: "ghost".to_string(),
        shard: 0,
        client: 0,
        req_seq: 0,
        items: vec![1; 4_096],
    }
    .encode();

    // Sever at the prefix boundary, just inside the body, and deep
    // inside the batch payload: the server must reap each half-frame.
    for &offset in &[2usize, 4, 5, 64, body.len() / 2] {
        let mut conn = FaultyConn::new(raw_conn(&server)).sever_at(offset);
        let mut framed = Vec::with_capacity(4 + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&body);
        let err = conn.write_all(&framed).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    client.ping().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stalled_writer_is_reaped_past_the_frame_deadline() {
    let (server, root) = start_tcp("stall");
    let body = Request::Ping.encode();
    let mut framed = Vec::with_capacity(4 + body.len());
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(&body);

    // The fast profile allows 200ms per frame; stall 800ms after the
    // length prefix. The server must abandon the connection instead of
    // waiting forever, so either our writes start failing or the
    // response never comes — but a fresh client is served immediately.
    let mut conn = FaultyConn::new(raw_conn(&server))
        .chunk(1)
        .stall_at(4, Duration::from_millis(800));
    let write = conn.write_all(&framed);
    let reply = match write {
        Ok(()) => read_frame(&mut conn).ok().flatten(),
        Err(_) => None,
    };
    assert!(
        reply.is_none(),
        "a byte-trickling staller must not be answered"
    );

    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    client.ping().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_soak_matches_sequential_oracle() {
    let (server, root) = start_tcp("soak");
    let addr = server.local_addr().unwrap();
    const CLIENTS: usize = 3;
    const BATCHES: u64 = 16;
    const BATCH_LEN: u64 = 400;

    // One single-shard tenant per client thread, so each tenant sees a
    // deterministic batch order and "byte-identical" is well-defined.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let tenant = format!("soak{t}");
                let mut client = Client::connect_tcp(addr).unwrap();
                client.create(&tenant, spec()).unwrap();
                let mut oracle = spec().build_bank().unwrap().remove(0);
                for i in 0..BATCHES {
                    let items: Vec<u64> = (0..BATCH_LEN)
                        .map(|k| (t as u64) * 1_000_003 + i * 131 + k % 97)
                        .collect();
                    // Every third batch first rides a doomed connection
                    // that dies mid-request: the server never sees a
                    // complete frame, so the batch is NOT applied and
                    // the oracle must not count the failed attempt.
                    if i % 3 == 0 {
                        let body = Request::Ingest {
                            tenant: tenant.clone(),
                            shard: 0,
                            client: 0,
                            req_seq: 0,
                            items: items.clone(),
                        }
                        .encode();
                        let doomed = TcpStream::connect(addr).unwrap();
                        let mut conn = FaultyConn::new(doomed).sever_at(7 + (i as usize % 40));
                        let mut framed = Vec::with_capacity(4 + body.len());
                        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
                        framed.extend_from_slice(&body);
                        assert!(conn.write_all(&framed).is_err());
                    }
                    // The real attempt, retried through overload hints.
                    let accepted = client.ingest_retry(&tenant, 0, &items, 10).unwrap();
                    assert_eq!(accepted, items.len() as u64);
                    use hh_core::StreamSummary as _;
                    oracle.insert_batch(&items);
                }
                let served = client.snapshot(&tenant).unwrap();
                use hh_core::MergeableSummary as _;
                assert_eq!(
                    served,
                    oracle.to_bytes().as_ref(),
                    "tenant {tenant}: served state diverged from the acked-batch oracle"
                );
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let mut client = Client::connect_tcp(addr).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.tenants, CLIENTS as u64);
    assert!(health.quarantined.is_empty());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kill_loses_at_most_the_uncheckpointed_window() {
    let root = tmp_root("kill");
    // Periodic checkpointing pushed out of the test's way: only the
    // explicit checkpoint below persists anything post-create. This
    // variant runs WITHOUT the write-ahead log: it measures the
    // checkpoint-only loss window that `kill_with_wal_recovers_every_
    // acked_batch` closes.
    let mut config = ServerConfig::fast(&root);
    config.checkpoint_every = Duration::from_secs(3_600);
    config.durability = Durability::CheckpointOnly;
    let server = Server::start(config, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();

    let durable: Vec<u64> = (0..3_000u64)
        .map(|i| if i % 2 == 0 { 42 } else { i })
        .collect();
    let doomed: Vec<u64> = vec![99_999; 3_000];
    client.create("ten", spec()).unwrap();
    client.ingest("ten", 0, &durable).unwrap();
    assert_eq!(client.checkpoint().unwrap(), 1);
    client.ingest("ten", 0, &doomed).unwrap();
    server.kill(); // abrupt: no final checkpoint, like SIGKILL

    let mut oracle = spec().build_bank().unwrap().remove(0);
    {
        use hh_core::StreamSummary as _;
        oracle.insert_batch(&durable);
    }

    let mut config = ServerConfig::fast(&root);
    config.durability = Durability::CheckpointOnly;
    let server = Server::start(config, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.tenants, 1);
    assert_eq!(
        health.recovered_tenants, 1,
        "boot must surface the recovery"
    );
    assert!(health.quarantined.is_empty());

    // Exactly the checkpointed window survives — bit-for-bit — and the
    // un-checkpointed batch is gone.
    use hh_core::MergeableSummary as _;
    let served = client.snapshot("ten").unwrap();
    assert_eq!(served, oracle.to_bytes().as_ref());
    let restored = DynSummary::from_bytes(&served).unwrap();
    use hh_core::HeavyHitters as _;
    assert!(restored.report().contains(42));
    assert!(!restored.report().contains(99_999));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kill_with_wal_recovers_every_acked_batch() {
    let root = tmp_root("kill-wal");
    // No periodic checkpoints and no final one (kill): after the single
    // explicit checkpoint mid-stream, every acked batch lives only in
    // the write-ahead log when the server dies. The oracle is fed every
    // acked batch — the contract is zero acked loss, byte-identical.
    let mut config = ServerConfig::fast(&root);
    config.checkpoint_every = Duration::from_secs(3_600);
    let server = Server::start(
        config.clone(),
        Endpoint::Tcp("127.0.0.1:0".parse().unwrap()),
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    client.create("ten", spec()).unwrap();

    let mut oracle = spec().build_bank().unwrap().remove(0);
    for i in 0..12u64 {
        let items: Vec<u64> = (0..500).map(|k| i * 131 + k % 17).collect();
        assert_eq!(client.ingest("ten", 0, &items).unwrap(), 500);
        use hh_core::StreamSummary as _;
        oracle.insert_batch(&items);
        if i == 4 {
            // One checkpoint mid-stream: batches 0..=4 live in the
            // bundle, 5..=11 only in the log.
            assert_eq!(client.checkpoint().unwrap(), 1);
        }
    }
    server.kill();

    let server = Server::start(config, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.recovered_tenants, 1);
    assert!(health.quarantined.is_empty());
    assert!(
        health.wal_replayed >= 7,
        "expected the 7 post-checkpoint batches replayed, health: {health:?}"
    );
    use hh_core::MergeableSummary as _;
    let served = client.snapshot("ten").unwrap();
    assert_eq!(
        served,
        oracle.to_bytes().as_ref(),
        "recovered state diverged from the every-acked-batch oracle"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn wal_soak_reliable_ingest_survives_kill_cycles_exactly() {
    // Three kill/recover cycles under WAL durability with NO
    // checkpoints at all besides create: every cycle's acked batches
    // must accumulate across restarts, exactly once each, matching a
    // sequential oracle byte-for-byte.
    let root = tmp_root("wal-cycles");
    let mut config = ServerConfig::fast(&root);
    config.checkpoint_every = Duration::from_secs(3_600);
    let mut oracle = spec().build_bank().unwrap().remove(0);
    let policy = RetryPolicy::default();
    for cycle in 0..3u64 {
        let server = Server::start(
            config.clone(),
            Endpoint::Tcp("127.0.0.1:0".parse().unwrap()),
        )
        .unwrap();
        let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        if cycle == 0 {
            client.create("ten", spec()).unwrap();
        }
        for i in 0..6u64 {
            let items: Vec<u64> = (0..300).map(|k| cycle * 977 + i * 131 + k % 13).collect();
            let accepted = client.ingest_reliable("ten", 0, &items, &policy).unwrap();
            assert_eq!(accepted, items.len() as u64);
            use hh_core::StreamSummary as _;
            oracle.insert_batch(&items);
        }
        server.kill();
    }
    let server = Server::start(config, Endpoint::Tcp("127.0.0.1:0".parse().unwrap())).unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    use hh_core::MergeableSummary as _;
    let served = client.snapshot("ten").unwrap();
    assert_eq!(
        served,
        oracle.to_bytes().as_ref(),
        "acked batches lost or double-applied across kill cycles"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fuzzed_range_requests_never_kill_a_dyadic_tenant() {
    // The ninth kind as the canary: a dyadic tenant keeps serving
    // range queries while its own RangeQuery/HeavyRanges frames are
    // corrupted, and a kill/restart cycle preserves the checkpointed
    // heavy forest.
    let (server, root) = start_tcp("dyadic-fuzz");
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    let dyadic = TenantSpec {
        kind: SummaryKind::Dyadic,
        shards: 1,
        m: 100_000,
        universe: 1 << 16,
        ..TenantSpec::default()
    };
    client.create("net", dyadic).unwrap();
    let stream: Vec<u64> = (0..6_000u64)
        .map(|i| {
            if i % 2 == 0 {
                0xAB00 + (i % 256)
            } else {
                i % 0x4000
            }
        })
        .collect();
    client.ingest("net", 0, &stream).unwrap();

    let valid = Request::RangeQuery {
        tenant: "net".to_string(),
        lo: 0xAB00,
        hi: 0xABFF,
    }
    .encode();
    for cut in corrupt::truncations(&valid) {
        match exchange(&server, cut) {
            Some(Response::Error { .. }) | None => {}
            Some(other) => panic!("truncated range request answered {other:?}"),
        }
    }
    for flipped in corrupt::bit_flips(&valid, 0x00D1_AD1C, 128) {
        let _ = exchange(&server, &flipped);
    }
    let heavy = Request::HeavyRanges {
        tenant: "net".to_string(),
        phi: 0.25,
    }
    .encode();
    for flipped in corrupt::bit_flips(&heavy, 0x00D1_AD1D, 128) {
        let _ = exchange(&server, &flipped);
    }

    // The tenant answered none of that damage with corrupted state.
    let (estimate, _) = client.range_query("net", 0xAB00, 0xABFF).unwrap();
    assert!(
        (estimate - 3_000.0).abs() <= 0.05 * 6_000.0,
        "block mass {estimate} after fuzzing"
    );
    client.checkpoint().unwrap();
    server.kill();

    let server = Server::start(
        ServerConfig::fast(&root),
        Endpoint::Tcp("127.0.0.1:0".parse().unwrap()),
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    let (restored, _) = client.range_query("net", 0xAB00, 0xABFF).unwrap();
    assert_eq!(
        estimate.to_bits(),
        restored.to_bits(),
        "checkpointed range estimate must survive a kill bit-for-bit"
    );
    let (ranges, _) = client.heavy_ranges("net", 0.25).unwrap();
    assert!(
        ranges
            .iter()
            .any(|&(_, lo, hi, _)| lo <= 0xAB00 && 0xABFF <= hi),
        "heavy forest lost across recovery: {ranges:?}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unix_domain_socket_smoke() {
    let root = tmp_root("uds");
    std::fs::create_dir_all(&root).unwrap();
    let sock = root.join("hh.sock");
    let server = Server::start(ServerConfig::fast(&root), Endpoint::Unix(sock.clone())).unwrap();
    let mut client = Client::connect_uds(&sock).unwrap();
    client.ping().unwrap();
    client.create("udst", spec()).unwrap();
    client.ingest("udst", 0, &[5; 2_000]).unwrap();
    let (entries, _) = client.query("udst").unwrap();
    assert!(entries.iter().any(|&(item, _)| item == 5));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
