//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use hh_streams::{arrange, OrderPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a shuffled stream of length `m` with planted heavy fractions
/// over a light-id background (the integration suite's standard
/// workload).
pub fn planted(m: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
    let mut counts: Vec<(u64, u64)> = heavy
        .iter()
        .map(|&(id, frac)| (id, (frac * m as f64).round() as u64))
        .collect();
    let used: u64 = counts.iter().map(|&(_, c)| c).sum();
    assert!(used <= m);
    let light = 2048u64;
    let fill = m - used;
    for j in 0..light {
        let c = fill / light + u64::from(j < fill % light);
        if c > 0 {
            counts.push((9_000_000 + j, c));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    arrange(&counts, OrderPolicy::Shuffled, &mut rng)
}

/// Counts how many of `trials` runs of `f` return false.
pub fn failures<F: FnMut(u64) -> bool>(trials: u64, mut f: F) -> u64 {
    (0..trials).filter(|&s| !f(s)).count() as u64
}
