#!/usr/bin/env bash
# Runs the per-item update-time bench (experiment E6) on its fixed
# Zipf(1.2) workload and records the results as JSON, so the repo's
# performance trajectory is measurable across PRs.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_1.json)
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"

# The vendored mini-criterion writes a JSON array of
# {group, id, mean_ns, best_ns, samples, throughput} records to the
# path named by CRITERION_JSON. cargo changes directory, so relative
# output paths must be anchored to the invoker's intent (repo root).
case "${out}" in
/*) json="${out}" ;;
*) json="$(pwd)/${out}" ;;
esac

CRITERION_JSON="${json}" cargo bench -p hh-bench --bench update_time

if [ ! -s "${json}" ]; then
    echo "error: no benchmark records at ${json}" >&2
    exit 1
fi
echo "benchmark records written to ${out}"
