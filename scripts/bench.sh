#!/usr/bin/env bash
# Runs the benchmark trajectory groups on their fixed workloads and
# records the results as JSON, so the repo's performance is measurable
# across PRs:
#
#   update_time         E6: scalar per-item insertion (all summaries)
#   batch_update_time   insert_batch on the same workload
#   sharded_throughput  hh-pipeline key-sharded ingestion, 1/2/4 shards
#   thread_scaling      shard-runtime ingest, forced seq vs parallel,
#                       1/2/4 shards (records _meta/host_cores)
#   query_time          report() extraction at three universe sizes
#   merge_serialize     summary merging, snapshot round trips, and the
#                       decode-only restore path (snapshot_decode)
#   read_write_mix      hot (cached) queries and mixed write-then-read
#   serve_throughput    hh-server loopback TCP: ping RTT, wire ingest,
#                       wire query (records _meta/serve_query_p50_ns,
#                       _meta/serve_query_p99_ns)
#   dyadic              hierarchical range-query bank: L-fold ingest,
#                       warm/cold heavy-prefix descent, canonical range
#                       decomposition, bank merge + snapshot
#   wal                 write-ahead log: append+commit per fsync policy,
#                       cold replay, acked-ingest RTT with/without WAL
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_1.json)
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"

# The vendored mini-criterion writes a JSON array of
# {group, id, mean_ns, best_ns, samples, throughput} records to the
# path named by CRITERION_JSON, merging across bench binaries (records
# with the same group/id are replaced, others kept). cargo changes
# directory, so relative output paths must be anchored to the invoker's
# intent (repo root). Start fresh so removed benchmarks do not linger.
case "${out}" in
/*) json="${out}" ;;
*) json="$(pwd)/${out}" ;;
esac
rm -f "${json}"

for bench in update_time batch_update_time sharded_throughput thread_scaling query_time merge_serialize read_write_mix serve_throughput dyadic wal; do
    CRITERION_JSON="${json}" cargo bench -p hh-bench --bench "${bench}"
done

if [ ! -s "${json}" ]; then
    echo "error: no benchmark records at ${json}" >&2
    exit 1
fi
echo "benchmark records written to ${out}"
