//! Distributed merge: checkpoint, ship, and combine seed-aligned
//! summaries — the PR-4 mergeability + persistence subsystem end to end.
//!
//! ```text
//! cargo run --release -p hh-examples --bin distributed_merge
//! ```
//!
//! Scenario: four ingest nodes each see an arbitrary slice of a
//! two-million-event stream (position-partitioned — no router in front,
//! unlike `hh-pipeline`'s key-sharded mode). Each node runs Algorithm 2
//! built from the *same structure seed* (so all four drew identical
//! repetition hashes) and its *own stream seed* (so sampling stays
//! independent). Every node checkpoints its summary to bytes; a
//! combiner restores the four snapshots and merges them bucket-wise.
//! The merged summary answers for the whole stream — and a tumbling
//! `WindowedHh` over the same traffic shows the time-decay face of the
//! same merge contract.

use hh_core::{HeavyHitters, HhParams, MergeableSummary, OptimalListHh, StreamSummary};
use hh_examples::{banner, count_with_share};
use hh_pipeline::{seed_aligned_algo2, windowed_algo2};
use hh_space::SpaceUsage;
use hh_streams::{arrange, ExactCounts, OrderPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOT: u64 = 901_144;
const WARM: u64 = 88_205_401;
const COLD: u64 = 3_317_529_009;
const NODES: usize = 4;

fn main() {
    let params = HhParams::with_delta(0.05, 0.15, 0.05).expect("valid parameters");
    let m: u64 = 2_000_000;
    let universe: u64 = 1 << 32;

    banner("workload");
    let mut counts = vec![(HOT, m / 4), (WARM, m * 18 / 100), (COLD, m * 9 / 100)];
    let rest = m - counts.iter().map(|&(_, c)| c).sum::<u64>();
    let tail = 60_000u64;
    for j in 0..tail {
        counts.push((4_000_000_000 + j, rest / tail + u64::from(j < rest % tail)));
    }
    let mut rng = StdRng::seed_from_u64(2016);
    let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
    let oracle = ExactCounts::from_stream(&stream);
    println!("  m = {m} events, 25% / 18% / 9% planted, ~60k-id tail");
    println!("  {NODES} ingest nodes, each seeing an arbitrary contiguous slice");

    banner("per-node ingestion (seed-aligned Algorithm 2)");
    let mut nodes = seed_aligned_algo2(params, universe, m, NODES, 42).expect("valid parameters");
    let chunk = stream.len().div_ceil(NODES);
    for (j, (node, slice)) in nodes.iter_mut().zip(stream.chunks(chunk)).enumerate() {
        node.insert_batch(slice);
        println!(
            "  node {j}: {} events, {} sampled, {} bits",
            slice.len(),
            node.samples(),
            node.model_bits()
        );
    }

    banner("checkpoint -> wire -> restore");
    let wires: Vec<bytes::Bytes> = nodes.iter().map(MergeableSummary::to_bytes).collect();
    let total_wire: usize = wires.iter().map(bytes::Bytes::len).sum();
    println!(
        "  {} snapshots, {total_wire} bytes total ({} bytes/node)",
        wires.len(),
        total_wire / wires.len()
    );
    let restored: Vec<OptimalListHh> = wires
        .iter()
        .map(|w| OptimalListHh::from_bytes(w).expect("own snapshot restores"))
        .collect();

    banner("combiner: repetition-wise merge");
    let parts_bits: u64 = restored.iter().map(SpaceUsage::model_bits).sum();
    let mut it = restored.into_iter();
    let mut merged = it.next().expect("at least one node");
    for node in it {
        merged.merge_from(&node).expect("seed-aligned nodes merge");
    }
    println!(
        "  merged: {} samples, {} bits (sum of parts: {parts_bits} bits — gamma subadditivity)",
        merged.samples(),
        merged.model_bits()
    );

    let report = merged.report();
    for e in report.entries() {
        println!(
            "  item {:>12}  est {}",
            e.item,
            count_with_share(e.count, m)
        );
    }
    let hot_ok = report.contains(HOT);
    let warm_ok = report.contains(WARM);
    let cold_suppressed = !report.contains(COLD);
    let worst = report
        .entries()
        .iter()
        .map(|e| (e.count - oracle.freq(e.item) as f64).abs() / m as f64)
        .fold(0.0f64, f64::max);
    println!(
        "  audit: hot={hot_ok} warm={warm_ok} cold suppressed={cold_suppressed} \
         worst err {:.3}% (budget {:.1}%)",
        100.0 * worst,
        100.0 * params.eps()
    );
    assert!(
        hot_ok && warm_ok && cold_suppressed,
        "merged report violated Definition 1"
    );

    banner("windowed reporting (the same merge, rotated in time)");
    let window = 250_000u64;
    let mut win = windowed_algo2(params, universe, window, 3, 7).expect("valid parameters");
    // Phase 1: the planted stream; phase 2: a regime change where a new
    // item takes over and the old heavies vanish.
    win.ingest(&stream);
    let before = win.report().expect("windows merge");
    // Filler ids stay inside the declared 2^32 universe and clear of the
    // planted items and the 4_000_000_000+ tail.
    let shifted: Vec<u64> = (0..4 * window)
        .map(|i| if i % 2 == 0 { 777 } else { 2_000_000_000 + i })
        .collect();
    win.ingest(&shifted);
    let after = win.report().expect("windows merge");
    println!(
        "  before regime change: hot reported = {}; after: hot reported = {}, new item 777 = {}",
        before.contains(HOT),
        after.contains(HOT),
        after.contains(777)
    );
    assert!(before.contains(HOT) && !after.contains(HOT) && after.contains(777));
    println!("\n  one merge contract: distributed combining, checkpoints, and time windows.");
}
