//! Hierarchical heavy hitters over an IPv4 packet stream — the
//! network-telemetry scenario for the dyadic range machinery.
//!
//! ```text
//! cargo run --release -p hh-examples --bin prefix_monitor
//! ```
//!
//! A router sees packets, not prefixes: the operator wants to know which
//! *address blocks* are hot — a data-center /8, a campus NAT /16, a
//! scanner's /24 — without keeping 2³² counters or deciding the prefix
//! lengths up front. The monitor keeps one small sketch per dyadic
//! level; any CIDR block is at most two canonical nodes per level, so
//! `range_estimate` answers arbitrary block queries in ≤ 2·32 point
//! lookups, and `heavy_ranges` finds every hot prefix at every length
//! at once by a top-down descent that only opens children of heavy
//! parents.

use hh_core::StreamSummary;
use hh_dyadic::{DyadicHh, HeavyRange};
use hh_examples::{banner, count_with_share, dotted_quad};
use hh_space::SpaceUsage;
use hh_streams::cidr::KEY_BITS;
use hh_streams::{collect_stream, CidrZipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// CIDR rendering of a heavy dyadic node (`10.0.0.0/8` style).
fn cidr(r: &HeavyRange) -> String {
    format!("{}/{}", dotted_quad(r.lo), r.level)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x1F);
    let m: usize = 300_000;

    banner("traffic model");
    // Three planted blocks with exact marginal masses; hosts inside
    // each block are Zipf(1.1), background is uniform outside them.
    let planted: [(u64, u32, f64, &str); 3] = [
        (10, 8, 0.30, "data-center (10.0.0.0/8)"),
        (0xC0A8, 16, 0.18, "campus NAT (192.168.0.0/16)"),
        (0xC00002, 24, 0.08, "scanner (192.0.2.0/24)"),
    ];
    for &(_, len, mass, label) in &planted {
        println!("  /{len:<2} block  {:>4.0}%  {label}", mass * 100.0);
    }
    println!("  remaining mass: uniform background outside every block");
    let mut source = CidrZipf::new(planted.iter().map(|&(v, l, p, _)| (v, l, p)).collect(), 1.1);

    banner("monitor configuration");
    // Report blocks above 5% of traffic; the per-level sketches split
    // the 2% range-error budget across the 32 levels.
    let (eps, phi, delta) = (0.02, 0.05, 0.01);
    let mut monitor =
        DyadicHh::count_min(eps, phi, delta, 1u64 << KEY_BITS, 0xDAD1C).expect("valid parameters");
    println!("  (eps, phi, delta) = ({eps}, {phi}, {delta})");
    println!("  {} dyadic levels over the IPv4 space", monitor.key_bits());

    banner("processing packets");
    let stream = collect_stream(&mut source, m, &mut rng);
    monitor.insert_batch(&stream);
    let exact = |lo: u64, hi: u64| stream.iter().filter(|&&a| lo <= a && a <= hi).count() as u64;
    println!("  processed {m} packets");

    banner("heavy-prefix forest (maximal leaves)");
    // The full forest is downward-closed (ancestors of a heavy block
    // are heavy by containment); the leaves — heavy nodes with no heavy
    // child — are where the traffic stops concentrating, i.e. the
    // narrowest prefixes still above phi.
    let forest = monitor.heavy_ranges(phi);
    let nodes: HashSet<(u32, u64)> = forest.iter().map(|r| (r.level, r.index)).collect();
    for leaf in forest.iter().filter(|r| {
        !nodes.contains(&(r.level + 1, r.index << 1))
            && !nodes.contains(&(r.level + 1, (r.index << 1) | 1))
    }) {
        println!(
            "  {:<20} {}",
            cidr(leaf),
            count_with_share(leaf.count, m as u64)
        );
    }
    println!("  ({} nodes in the full forest)", forest.len());

    banner("audit: planted blocks vs the forest");
    let mut ok = true;
    for &(value, len, mass, label) in &planted {
        let found = nodes.contains(&(len, value));
        println!(
            "  {label:<28} mass {:>4.0}%: in forest = {found}",
            mass * 100.0
        );
        ok &= found;
    }
    assert!(ok, "a planted block above phi was missed");

    banner("range queries (<= 2 nodes per level each)");
    // The planted blocks, the hot half of the data-center block, and a
    // block nobody planted — estimates must track exact counts within
    // eps * m = 2% of the stream.
    let mut ranges: Vec<(u64, u64, &str)> = planted
        .iter()
        .map(|&(v, len, _, label)| {
            let lo = v << (KEY_BITS - len);
            (lo, lo + ((1u64 << (KEY_BITS - len)) - 1), label)
        })
        .collect();
    ranges.push((0x0A00_0000, 0x0A00_FFFF, "hottest /16 of the data-center"));
    ranges.push((0xAC10_0000, 0xAC1F_FFFF, "172.16.0.0/12 (nothing planted)"));
    for (lo, hi, label) in ranges {
        let est = monitor.range_estimate(lo, hi);
        let truth = exact(lo, hi);
        let err = (est - truth as f64).abs() / m as f64;
        println!(
            "  [{:>15} .. {:<15}] est {est:>9.0}  exact {truth:>7}  err {:>5.2}% of m  {label}",
            dotted_quad(lo),
            dotted_quad(hi),
            err * 100.0
        );
        assert!(err <= eps, "range error above eps * m");
    }

    banner("space");
    println!(
        "  monitor state: {} model bits (~{:.1} KiB heap) vs 2^32 exact counters",
        monitor.model_bits(),
        monitor.heap_bytes() as f64 / 1024.0
    );
    println!("  all planted blocks recovered, all range errors within eps - OK");
}
