//! Serving demo: a fault-tolerant heavy-hitters daemon on loopback.
//!
//! ```text
//! cargo run --release -p hh-examples --bin serve_demo
//! ```
//!
//! Starts an `hh-server` on a loopback TCP port, provisions two tenants
//! with different summary engines — `ads` (SpaceSaving) and `search`
//! (the paper's Algorithm 2 via `OptimalListHh`) — and streams Zipf
//! traffic into both over the wire. Mid-stream the process "crashes":
//! the server is killed abruptly (no final checkpoint, as with SIGKILL)
//! and restarted over the same store directory. Boot recovery restores
//! every tenant from its checkpoint bundle and replays the write-ahead
//! log tail over it — the demo snapshots both tenants right before the
//! kill and proves the recovered state is **byte-identical**: nothing
//! acked is lost, not even the traffic that rode in after the last
//! checkpoint.

use hh_examples::banner;
use hh_server::client::Client;
use hh_server::facade::{SummaryKind, TenantSpec};
use hh_server::server::{Endpoint, Server, ServerConfig};
use hh_streams::{collect_stream, ZipfGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::path::PathBuf;

const UNIVERSE: u64 = 1 << 24;
const BATCH: usize = 2_000;
const BATCHES_BEFORE_CRASH: usize = 30;
const BATCHES_AFTER_CRASH: usize = 30;

fn store_root() -> PathBuf {
    std::env::temp_dir().join(format!("hh-serve-demo-{}", std::process::id()))
}

fn start_server(root: &PathBuf) -> (Server, SocketAddr) {
    let server = Server::start(
        ServerConfig::new(root),
        Endpoint::Tcp("127.0.0.1:0".parse().expect("loopback addr")),
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("tcp endpoint has an address");
    (server, addr)
}

fn tenant_specs() -> [(&'static str, TenantSpec); 2] {
    [
        (
            "ads",
            TenantSpec {
                kind: SummaryKind::SpaceSaving,
                universe: UNIVERSE,
                m: (BATCH * (BATCHES_BEFORE_CRASH + BATCHES_AFTER_CRASH)) as u64,
                shards: 2,
                ..TenantSpec::default()
            },
        ),
        (
            "search",
            TenantSpec {
                kind: SummaryKind::Algo2,
                // Zipf(1.2)'s head item holds ~18% of the stream, so
                // the report threshold must sit below that.
                eps: 0.05,
                phi: 0.15,
                universe: UNIVERSE,
                m: (BATCH * (BATCHES_BEFORE_CRASH + BATCHES_AFTER_CRASH)) as u64,
                shards: 2,
                ..TenantSpec::default()
            },
        ),
    ]
}

/// Streams `batches` Zipf batches into both tenants, spreading each
/// tenant's traffic across its two shards.
fn stream_batches(
    client: &mut Client,
    rng: &mut StdRng,
    sources: &mut [(&str, ZipfGenerator); 2],
    batches: usize,
) -> u64 {
    let mut sent = 0;
    for i in 0..batches {
        for (tenant, zipf) in sources.iter_mut() {
            let items = collect_stream(zipf, BATCH, rng);
            let shard = (i % 2) as u32;
            sent += client
                .ingest_retry(tenant, shard, &items, 8)
                .expect("ingest acked");
        }
    }
    sent
}

fn show_reports(client: &mut Client) {
    for tenant in ["ads", "search"] {
        let (entries, epoch) = client.query(tenant).expect("query");
        let head: Vec<String> = entries
            .iter()
            .take(3)
            .map(|&(item, est)| format!("{item}≈{est:.0}"))
            .collect();
        println!(
            "  {tenant:<7} epoch {epoch:>2}  top-3: {}",
            if head.is_empty() {
                "(empty)".to_string()
            } else {
                head.join("  ")
            }
        );
    }
}

fn main() {
    let root = store_root();
    let _ = std::fs::remove_dir_all(&root);
    let mut rng = StdRng::seed_from_u64(2016);

    banner("boot");
    let (server, addr) = start_server(&root);
    println!("  serving on {addr}, store at {}", root.display());
    let mut client = Client::connect_tcp(addr).expect("connect");
    for (name, spec) in tenant_specs() {
        client.create(name, spec).expect("create tenant");
        println!("  tenant {name:<7} created");
    }

    banner("first half of the stream");
    let mut sources = [
        ("ads", ZipfGenerator::new(UNIVERSE, 1.4).scrambled(&mut rng)),
        (
            "search",
            ZipfGenerator::new(UNIVERSE, 1.2).scrambled(&mut rng),
        ),
    ];
    let sent = stream_batches(&mut client, &mut rng, &mut sources, BATCHES_BEFORE_CRASH);
    println!("  {sent} items acked across both tenants");
    let persisted = client.checkpoint().expect("checkpoint");
    println!("  checkpoint persisted {persisted} tenants");
    show_reports(&mut client);

    banner("crash");
    // Un-checkpointed traffic rides ahead of the crash. It lives only
    // in the write-ahead log — under checkpoint-only durability this
    // window would be lost; with the WAL it must survive to the byte.
    let at_risk = stream_batches(&mut client, &mut rng, &mut sources, 2);
    let pre_kill: Vec<(&str, Vec<u8>)> = ["ads", "search"]
        .iter()
        .map(|&t| (t, client.snapshot(t).expect("pre-kill snapshot")))
        .collect();
    server.kill(); // abrupt — no shutdown checkpoint, like SIGKILL
    println!("  server killed with {at_risk} items acked past the last checkpoint");

    banner("restart + recovery");
    let (server, addr) = start_server(&root);
    let mut client = Client::connect_tcp(addr).expect("reconnect");
    let health = client.health().expect("health");
    println!(
        "  recovered {} tenants from {}, {} quarantined",
        health.recovered_tenants,
        root.display(),
        health.quarantined.len()
    );
    println!(
        "  wal replayed {} records across {} segments (depth now {})",
        health.wal_replayed, health.wal_segments, health.wal_depth
    );
    for (tenant, before) in &pre_kill {
        let after = client.snapshot(tenant).expect("post-recovery snapshot");
        assert_eq!(
            &after, before,
            "tenant {tenant}: acked data lost across the kill"
        );
        println!(
            "  tenant {tenant:<7} byte-identical to the pre-kill state ({} bytes)",
            after.len()
        );
    }
    show_reports(&mut client);

    banner("second half of the stream");
    let sent = stream_batches(&mut client, &mut rng, &mut sources, BATCHES_AFTER_CRASH);
    println!("  {sent} items acked after recovery");
    show_reports(&mut client);

    banner("graceful shutdown");
    client.shutdown_server().expect("shutdown acked");
    server.shutdown();
    let health_len = std::fs::read_dir(&root).map(|d| d.count()).unwrap_or(0);
    println!("  final checkpoint on disk ({health_len} store entries)");
    let _ = std::fs::remove_dir_all(&root);
}
