//! Shared pretty-printing helpers for the example binaries.

#![forbid(unsafe_code)]

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a count with its fraction of the stream.
pub fn count_with_share(count: f64, m: u64) -> String {
    format!(
        "{:>12.0}  ({:5.2}% of stream)",
        count,
        100.0 * count / m as f64
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_formatting() {
        let s = count_with_share(250.0, 1000);
        assert!(s.contains("250"));
        assert!(s.contains("25.00%"));
    }
}
