//! Shared pretty-printing helpers for the example binaries.

#![forbid(unsafe_code)]

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a count with its fraction of the stream.
pub fn count_with_share(count: f64, m: u64) -> String {
    format!(
        "{:>12.0}  ({:5.2}% of stream)",
        count,
        100.0 * count / m as f64
    )
}

/// Formats the low 32 bits of `addr` as an IPv4 dotted quad.
pub fn dotted_quad(addr: u64) -> String {
    format!(
        "{}.{}.{}.{}",
        (addr >> 24) & 0xFF,
        (addr >> 16) & 0xFF,
        (addr >> 8) & 0xFF,
        addr & 0xFF
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_formatting() {
        let s = count_with_share(250.0, 1000);
        assert!(s.contains("250"));
        assert!(s.contains("25.00%"));
    }

    #[test]
    fn quad_formatting() {
        assert_eq!(dotted_quad(0x0A00_0001), "10.0.0.1");
        assert_eq!(dotted_quad(0xC0A8_0005), "192.168.0.5");
    }
}
