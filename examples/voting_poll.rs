//! Streaming election night: the rank-aggregation problems of §1.2/§3.4.
//!
//! ```text
//! cargo run --release -p hh-examples --bin voting_poll
//! ```
//!
//! A stream of ranked ballots (Mallows-distributed around a hidden
//! consensus) arrives one at a time — the "online polling" / "voters
//! providing their votes in a streaming fashion" scenario. We track four
//! winners simultaneously in small space: Borda (Theorem 5), maximin
//! (Theorem 6), plurality (ε-Maximum on first places) and veto
//! (ε-Minimum on last places), then audit against exact tallies.

use hh_examples::banner;
use hh_space::SpaceUsage;
use hh_votes::{
    Election, MallowsModel, PluralityAdapter, Ranking, StreamingBorda, StreamingMaximin,
    VetoAdapter, VoteSummary,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CANDIDATES: [&str; 8] = [
    "Ada", "Blaise", "Claude", "Dijkstra", "Erdos", "Fourier", "Gauss", "Hopper",
];

fn main() {
    let n = CANDIDATES.len();
    let m: u64 = 200_000;
    let mut rng = StdRng::seed_from_u64(1936);

    banner("electorate model");
    // Hidden consensus: alphabetical order, moderate dispersion.
    let consensus = Ranking::identity(n);
    let model = MallowsModel::new(consensus, 0.75);
    println!("  {m} ballots, Mallows dispersion 0.75 around a hidden consensus");

    banner("streaming trackers");
    let eps = 0.02;
    let delta = 0.05;
    let mut borda = StreamingBorda::new(n, eps, 0.5, delta, m, 1).expect("valid parameters");
    let mut maximin = StreamingMaximin::new(n, 0.05, 0.5, delta, m, 2).expect("valid parameters");
    let mut plurality = PluralityAdapter::new(n, eps, delta, m, 3).expect("valid parameters");
    let mut veto = VetoAdapter::new(n, eps, delta, m, 4).expect("valid parameters");
    println!("  Borda / maximin / plurality / veto, all one-pass");

    let mut exact = Election::new(n);
    for _ in 0..m {
        let ballot = model.sample(&mut rng);
        borda.insert_vote(&ballot);
        maximin.insert_vote(&ballot);
        plurality.insert_vote(&ballot);
        veto.insert_vote(&ballot);
        exact.add_vote(&ballot);
    }

    banner("winners (streaming vs exact)");
    let name = |c: u64| CANDIDATES[c as usize];
    let b = borda.winner().expect("non-empty stream");
    println!(
        "  Borda     : {:<9} (est score {:.0}; exact winner {})",
        name(b.item),
        b.count,
        name(exact.borda_winner().unwrap() as u64)
    );
    let mm = maximin.winner().expect("non-empty stream");
    println!(
        "  Maximin   : {:<9} (est score {:.0}; exact winner {})",
        name(mm.item),
        mm.count,
        name(exact.maximin_winner().unwrap() as u64)
    );
    let p = plurality.winner().expect("non-empty stream");
    println!(
        "  Plurality : {:<9} (est first places {:.0}; exact winner {})",
        name(p.item),
        p.count,
        name(exact.plurality_winner().unwrap() as u64)
    );
    let v = veto.winner();
    println!(
        "  Veto      : {:<9} (est last places {:.0}; exact winner {})",
        name(v.item),
        v.count,
        name(exact.veto_winner().unwrap() as u64)
    );

    banner("full Borda scoreboard (est vs exact, budget = eps*m*n)");
    let est = borda.score_estimates();
    let budget = eps * (m as f64) * n as f64;
    for c in 0..n {
        let e = est[c];
        let x = exact.borda_scores()[c] as f64;
        let flag = if (e - x).abs() <= budget {
            "ok"
        } else {
            "VIOLATION"
        };
        println!(
            "  {:<9} est {e:>12.0}  exact {x:>12.0}  {flag}",
            CANDIDATES[c]
        );
        assert!((e - x).abs() <= budget);
    }

    banner("space");
    println!("  Borda tracker   : {:>8} model bits", borda.model_bits());
    println!("  Maximin tracker : {:>8} model bits", maximin.model_bits());
    println!(
        "  Plurality       : {:>8} model bits",
        plurality.model_bits()
    );
    println!("  Veto            : {:>8} model bits", veto.model_bits());
    println!(
        "  (exact tallies would hold all {m} ballots = {} bits)",
        m * (n as u64) * 3
    );
}
