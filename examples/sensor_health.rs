//! Anomaly detection with ε-Minimum — §1.2's sensor scenario.
//!
//! ```text
//! cargo run --release -p hh-examples --bin sensor_health
//! ```
//!
//! "Suppose one has a known set of sensors broadcasting information and
//! one observes the 'From:' field in the broadcasted packets. Sensors
//! which send a small number of packets may be down or defective, and an
//! algorithm for the ε-Minimum problem could find such sensors."
//!
//! Sixteen sensors broadcast at a common rate; one is degraded (sends at
//! a twentieth of the rate) and one is dead. The ε-Minimum tracker
//! (Algorithm 3) runs in a few hundred bits and must point at a
//! defective sensor.

use hh_core::{EpsMinimum, StreamSummary};
use hh_examples::banner;
use hh_space::SpaceUsage;
use hh_streams::ExactCounts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SENSORS: u64 = 16;
const DEGRADED: u64 = 11;
const DEAD: u64 = 5;

fn main() {
    let mut rng = StdRng::seed_from_u64(47);
    let m: u64 = 1_000_000;

    banner("fleet");
    println!("  {SENSORS} sensors; #{DEAD} is dead, #{DEGRADED} sends at 1/20 rate");

    // Weights: healthy sensors 20, degraded 1, dead 0.
    let weights: Vec<f64> = (0..SENSORS)
        .map(|s| match s {
            DEAD => 0.0,
            DEGRADED => 1.0,
            _ => 20.0,
        })
        .collect();
    let total: f64 = weights.iter().sum();

    banner("tracker");
    let eps = 0.02;
    let delta = 0.2;
    let mut tracker = EpsMinimum::new(eps, delta, SENSORS, m, 9).expect("valid parameters");
    println!("  eps-Minimum with eps = {eps}, delta = {delta} (universe of {SENSORS} ids)");

    let mut oracle = ExactCounts::new();
    for _ in 0..m {
        // Draw the sender proportional to its weight.
        let mut u = rng.gen::<f64>() * total;
        let mut sender = SENSORS - 1;
        for (s, &w) in weights.iter().enumerate() {
            if u < w {
                sender = s as u64;
                break;
            }
            u -= w;
        }
        tracker.insert(sender);
        oracle.insert(sender);
    }
    println!("  observed {m} packets");

    banner("diagnosis");
    let suspect = tracker.min_estimate();
    println!(
        "  quietest sensor: #{} (estimated {:.0} packets)",
        suspect.item, suspect.count
    );
    for s in 0..SENSORS {
        let marker = if s == suspect.item {
            " <-- reported"
        } else {
            ""
        };
        println!("  sensor {s:>2}: {:>8} packets{marker}", oracle.freq(s));
    }

    // The guarantee: the reported sensor's packet count is within eps*m
    // of the true minimum (the dead sensor's 0).
    let slack = (eps * m as f64) as u64;
    assert!(
        oracle.is_eps_minimum(suspect.item, SENSORS, slack),
        "reported sensor is not an eps-minimum"
    );
    println!(
        "\n  verdict: sensor #{} needs a technician (within {slack} packets of the true minimum)",
        suspect.item
    );
    println!("  tracker state: {} model bits", tracker.model_bits());
}
