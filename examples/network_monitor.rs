//! Elephant-flow detection on a simulated router — the paper's marquee
//! application ("network flow identification at IP routers \[EV03\]").
//!
//! ```text
//! cargo run --release -p hh-examples --bin network_monitor
//! ```
//!
//! Simulates a packet stream where flows are (src, dst, port) tuples
//! hashed to 64-bit flow ids: a handful of elephant flows (bulk
//! transfers) ride on a long tail of mice. The monitor runs the optimal
//! algorithm with a small memory budget — the point of the paper's space
//! bound is exactly this setting: "Given the limited resources of devices
//! which typically run heavy hitters algorithms, such as internet
//! routers, this quadratic gap can be critical in applications."

use hh_core::{HeavyHitters, HhParams, OptimalListHh, StreamSummary};
use hh_dyadic::DyadicHh;
use hh_examples::{banner, count_with_share, dotted_quad};
use hh_space::SpaceUsage;
use hh_streams::{ExactCounts, ItemSource, PlantedGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A five-tuple flow identity, packed into a synthetic 64-bit id the way
/// a router's flow cache would hash it.
#[derive(Debug, Clone, Copy)]
struct Flow {
    src: u32,
    dst: u32,
    dst_port: u16,
}

impl Flow {
    fn id(&self) -> u64 {
        // Any injective packing works; the algorithms only see ids.
        ((self.src as u64) << 32) ^ ((self.dst as u64) << 16) ^ self.dst_port as u64
    }
}

/// Source address of a packet: elephants carry their flow's fixed
/// source; mice get a pseudorandom one derived from the flow id (a
/// router would read it off the header — here the header is synthetic).
fn src_of(packet: u64, elephants: &[(Flow, f64, &str)], universe: u64) -> u64 {
    for (flow, _, _) in elephants {
        if flow.id() % universe == packet {
            return flow.src as u64;
        }
    }
    let mut z = packet.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 0xFFFF_FFFF
}

fn main() {
    let mut rng = StdRng::seed_from_u64(443);
    let m: u64 = 4_000_000;
    let universe: u64 = 1 << 48;

    banner("traffic model");
    // Three elephants: a backup job, a video stream, a database sync.
    let elephants = [
        (
            Flow {
                src: 0x0A00_0001,
                dst: 0x0A00_0102,
                dst_port: 873,
            },
            0.18,
            "backup (rsync)",
        ),
        (
            Flow {
                src: 0xC0A8_0005,
                dst: 0x0A00_0207,
                dst_port: 1935,
            },
            0.09,
            "video (rtmp)",
        ),
        (
            Flow {
                src: 0x0A00_0030,
                dst: 0x0A00_0A0A,
                dst_port: 5432,
            },
            0.05,
            "db sync",
        ),
    ];
    for (flow, share, label) in &elephants {
        println!(
            "  elephant {:016x}  {:>4.1}%  {label}",
            flow.id(),
            share * 100.0
        );
    }
    println!("  plus ~200k mouse flows sharing the rest");

    let planted: Vec<(u64, f64)> = elephants
        .iter()
        .map(|(f, share, _)| (f.id() % universe, *share))
        .collect();
    let mut source = PlantedGenerator::new(universe, planted.clone());

    banner("monitor configuration");
    // Report flows above 4% of traffic, estimates within 1%.
    let params = HhParams::with_delta(0.01, 0.04, 0.05).expect("valid parameters");
    let mut monitor = OptimalListHh::new(params, universe, m, 17).expect("valid parameters");
    println!(
        "  (eps, phi, delta) = ({}, {}, {})",
        params.eps(),
        params.phi(),
        params.delta()
    );

    banner("processing packets");
    let mut oracle = ExactCounts::new();
    let mut srcs: Vec<u64> = Vec::with_capacity(m as usize);
    for _ in 0..m {
        // Mice ids are drawn uniformly; occasionally mutate the port to
        // mimic ephemeral connections.
        let packet = if rng.gen_bool(0.001) {
            rng.gen_range(0..universe)
        } else {
            source.next_item(&mut rng)
        };
        monitor.insert(packet);
        oracle.insert(packet);
        srcs.push(src_of(packet, &elephants, universe));
    }
    println!("  processed {m} packets");

    banner("elephant report");
    let report = monitor.report();
    for e in report.entries() {
        let label = elephants
            .iter()
            .find(|(f, _, _)| f.id() % universe == e.item)
            .map(|(_, _, l)| *l)
            .unwrap_or("(unexpected)");
        println!(
            "  flow {:016x}  {}  {label}",
            e.item,
            count_with_share(e.count, m)
        );
    }

    banner("audit vs exact counts");
    let mut ok = true;
    for (flow, share, label) in &elephants {
        let id = flow.id() % universe;
        let found = report.contains(id);
        let exact = oracle.freq(id);
        if *share >= params.phi() {
            println!(
                "  {label:<15} share {:>4.1}%: reported = {found} (exact count {exact})",
                share * 100.0
            );
            ok &= found;
        } else {
            println!(
                "  {label:<15} share {:>4.1}%: below phi, reporting optional (reported = {found})",
                share * 100.0
            );
        }
    }
    println!(
        "\n  monitor state: {} model bits (~{:.1} KiB heap) for {m} packets",
        monitor.model_bits(),
        monitor.heap_bytes() as f64 / 1024.0
    );
    assert!(ok, "an elephant above phi was missed");
    println!("  all elephants above phi reported - OK");

    banner("source-prefix attribution (dyadic range queries)");
    // The flow monitor says *which flows* are elephants; the operator's
    // next question is *whose network* the traffic comes from. A dyadic
    // bank over the source-address space answers CIDR-block queries the
    // flow table cannot: "how much of the traffic originates inside
    // 10.0.0.0/8?" is one range_estimate, not a scan.
    let (d_eps, d_phi) = (0.02, 0.04);
    let mut prefixes =
        DyadicHh::count_min(d_eps, d_phi, 0.05, 1u64 << 32, 29).expect("valid parameters");
    prefixes.insert_batch(&srcs);

    let (corp_lo, corp_hi) = (0x0A00_0000u64, 0x0AFF_FFFFu64);
    let est = prefixes.range_estimate(corp_lo, corp_hi);
    let truth = srcs
        .iter()
        .filter(|&&s| corp_lo <= s && s <= corp_hi)
        .count() as f64;
    println!(
        "  traffic from 10.0.0.0/8 (backup + db sync): est {}",
        count_with_share(est, m)
    );
    println!(
        "  exact from the header trace:             {}",
        count_with_share(truth, m)
    );
    assert!(
        (est - truth).abs() <= d_eps * m as f64,
        "corporate-block estimate off by more than eps * m"
    );

    // The heavy-prefix forest pinpoints the sources themselves: every
    // elephant's host shows up as a heavy /32, and the corporate /8
    // aggregate is heavy because two elephants share it.
    let forest = prefixes.heavy_ranges(d_phi);
    let heavy_host = |src: u32| {
        forest
            .iter()
            .any(|r| r.level == 32 && r.index == src as u64)
    };
    assert!(
        forest.iter().any(|r| r.level == 8 && r.index == 10),
        "10.0.0.0/8 must be a heavy prefix"
    );
    for (flow, share, label) in &elephants {
        if *share >= d_phi {
            println!(
                "  heavy /32 source {:<12} found = {}  ({label})",
                dotted_quad(flow.src as u64),
                heavy_host(flow.src)
            );
            assert!(heavy_host(flow.src), "elephant source missed at /32");
        }
    }
    println!(
        "\n  prefix bank: {} model bits (~{:.1} KiB heap) across {} dyadic levels",
        prefixes.model_bits(),
        prefixes.heap_bytes() as f64 / 1024.0,
        prefixes.key_bits()
    );
    println!("  source attribution consistent with the header trace - OK");
}
