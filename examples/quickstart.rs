//! Quickstart: find the ℓ1-heavy hitters of a stream in sublinear space.
//!
//! ```text
//! cargo run --release -p hh-examples --bin quickstart
//! ```
//!
//! A two-million-event purchase stream over a 2³²-product catalogue, with
//! three popular products planted at 25% / 18% / 9%. At (ε, φ) = (5%,
//! 15%), Definition 1 demands: report the 25% and 18% items, refuse the
//! 9% item (it sits below (φ−ε)m = 10%), and estimate reported counts to
//! ±εm. Both of the paper's algorithms and the Misra–Gries baseline run
//! side by side.
//!
//! Note the standing regime assumption (§3.1): the algorithms expect
//! `m ≥ poly(ε⁻¹ log φ⁻¹)` — here m = 2·10⁶ comfortably covers ε = 0.05.

use hh_baselines::MisraGriesBaseline;
use hh_core::{HeavyHitters, HhParams, OptimalListHh, SimpleListHh, StreamSummary};
use hh_examples::{banner, count_with_share};
use hh_space::SpaceUsage;
use hh_streams::{arrange, ExactCounts, OrderPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

const COFFEE: u64 = 901_144;
const TEA: u64 = 88_205_401;
const SODA: u64 = 3_317_529_009;

fn main() {
    let params = HhParams::with_delta(0.05, 0.15, 0.05).expect("valid parameters");
    let m: u64 = 2_000_000;
    let universe: u64 = 1 << 32;

    banner("workload");
    // 25% coffee, 18% tea, 9% soda, the rest spread over ~60k slow movers.
    let mut counts = vec![(COFFEE, m / 4), (TEA, m * 18 / 100), (SODA, m * 9 / 100)];
    let rest = m - counts.iter().map(|&(_, c)| c).sum::<u64>();
    let slow_movers = 60_000u64;
    for j in 0..slow_movers {
        counts.push((
            4_000_000_000 + j,
            rest / slow_movers + u64::from(j < rest % slow_movers),
        ));
    }
    let mut rng = StdRng::seed_from_u64(2016);
    let stream = arrange(&counts, OrderPolicy::Shuffled, &mut rng);
    println!("  m = {m} purchases over a 2^32-product catalogue");
    println!("  coffee 25%, tea 18%, soda 9%, ~60k slow movers share the rest");

    banner("ground truth (exact, unbounded space)");
    let oracle = ExactCounts::from_stream(&stream);
    for (item, label) in [(COFFEE, "coffee"), (TEA, "tea"), (SODA, "soda")] {
        println!(
            "  {label:<7} {}",
            count_with_share(oracle.freq(item) as f64, m)
        );
    }
    println!("  must report: coffee, tea (> phi = 15%); must suppress: soda (<= phi - eps = 10%)");

    let audit = |name: &str, report: &hh_core::Report, bits: u64| {
        let coffee_ok = report.contains(COFFEE);
        let tea_ok = report.contains(TEA);
        let soda_suppressed = !report.contains(SODA);
        let worst = report
            .entries()
            .iter()
            .map(|e| (e.count - oracle.freq(e.item) as f64).abs() / m as f64)
            .fold(0.0f64, f64::max);
        println!(
            "  {name:<12} report={{coffee:{coffee_ok} tea:{tea_ok}}} soda suppressed={soda_suppressed} \
             worst err {:.3}% (budget {:.1}%)  space {bits} bits",
            100.0 * worst,
            100.0 * params.eps(),
        );
        assert!(
            coffee_ok && tea_ok && soda_suppressed,
            "{name} violated Definition 1"
        );
    };

    banner("Algorithm 1 (Theorem 1, simple near-optimal)");
    let mut a1 = SimpleListHh::new(params, universe, m, 7).expect("valid parameters");
    a1.insert_all(&stream);
    for e in a1.report().entries() {
        println!(
            "  item {:>12}  est {}",
            e.item,
            count_with_share(e.count, m)
        );
    }

    banner("Algorithm 2 (Theorem 2, optimal)");
    let mut a2 = OptimalListHh::new(params, universe, m, 8).expect("valid parameters");
    a2.insert_all(&stream);
    for e in a2.report().entries() {
        println!(
            "  item {:>12}  est {}",
            e.item,
            count_with_share(e.count, m)
        );
    }

    banner("Misra-Gries baseline (the prior art)");
    let mut mg = MisraGriesBaseline::new(params.eps(), params.phi(), universe);
    mg.insert_all(&stream);
    for e in mg.report().entries() {
        println!(
            "  item {:>12}  est {}",
            e.item,
            count_with_share(e.count, m)
        );
    }

    banner("scorecard (Definition 1 audit)");
    audit("algo1", &a1.report(), a1.model_bits());
    audit("algo2", &a2.report(), a2.model_bits());
    audit("misra-gries", &mg.report(), mg.model_bits());
    println!("\n  all three satisfy the guarantee; the space columns show the trade.");
}
